// Package runconfig implements the runtime-settings side of the FastBFS
// configuration file: "FastBFS ... uses an associated configuration file
// to describe the graph characteristics (e.g., vertices number) and
// runtime settings (e.g., the additional disk location), etc." (§III).
// Graph characteristics live next to the dataset (graph.ReadConfig);
// this file carries the per-run knobs — engine, budgets, buffers, trim
// policy, and the simulated device layout — in the same plain key=value
// format.
package runconfig

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"fastbfs/internal/core"
	"fastbfs/internal/disksim"
	"fastbfs/internal/graph"
	"fastbfs/internal/xstream"
)

// Config is a parsed runtime-settings file.
type Config struct {
	// Engine selects fastbfs (default), xstream or graphchi.
	Engine string
	// Root is the BFS source vertex.
	Root graph.VertexID

	// Engine-shared settings (zero = engine default).
	MemoryBudget    uint64
	Threads         int
	StreamBufSize   int
	PrefetchBuffers int
	Partitions      int
	MaxIterations   int
	ScatterWorkers  int
	// Direction is the traversal direction policy: topdown (default),
	// bottomup, or auto for the Beamer-style hybrid. Empty leaves the
	// engine's defaulting (FASTBFS_DIRECTION) in effect.
	Direction xstream.Direction
	// Codec is the working-file codec for the run (fixed or delta).
	// Empty leaves the engine's defaulting in effect — FASTBFS_CODEC,
	// else the dataset's stored codec — so the precedence is
	// flag/config > env > stored > fixed.
	Codec graph.Codec
	// Reorder is the store-time half of the codec surface: tools that
	// build datasets from a settings file (see StoreOptions) relabel
	// vertices by descending degree. Engines ignore it — a reordered
	// dataset is detected from its own config and translated at the API
	// boundary.
	Reorder bool

	// FastBFS trim policy.
	TrimStartIteration         int
	TrimVisitedFraction        float64
	DisableTrimming            bool
	DisableSelectiveScheduling bool
	StayBufSize                int
	StayBufCount               int
	GracePeriod                float64
	GraceWallMillis            int
	// ResidencyBudget is the resident-partition cache budget in
	// core.Options semantics (0 = env/off, core.ResidencyOff,
	// core.ResidencyUnbounded).
	ResidencyBudget int64

	// Simulated testbed. Sim=false runs wall-clock against real files.
	Sim bool
	// Device is "hdd" or "ssd".
	Device string
	// SeekScale divides the positioning cost (scaled testbeds).
	SeekScale float64
	// AdditionalDisk places update and stay-out streams on a second
	// device — the paper's example runtime setting.
	AdditionalDisk bool
	// StayDiskBandwidthFrac, when > 0, adds a dedicated stay disk with
	// the main device's bandwidth multiplied by this fraction.
	StayDiskBandwidthFrac float64

	// Serving-layer batch execution (DESIGN.md §13); these only matter
	// to the daemon, engine runs ignore them. BatchSize -1 means "not
	// specified" (the daemon's flag/env default applies); 0 disables
	// batching; positive values cap the distinct roots per shared run.
	BatchSize int
	// BatchWaitMillis is the batch hold window in milliseconds; 0 means
	// not specified.
	BatchWaitMillis int

	// Overload-control settings (DESIGN.md §15), daemon-only like the
	// batch knobs. Shed uses -1 for "not specified" (daemon flag/env
	// default applies), 0 for off, 1 for on.
	Shed int
	// ShedTargetMillis/ShedIntervalMillis are the CoDel target and
	// interval in milliseconds; 0 means not specified.
	ShedTargetMillis   int
	ShedIntervalMillis int
	// BreakerThreshold is the circuit breaker's consecutive-I/O-failure
	// trip count: -1 not specified, 0 disables the breaker.
	BreakerThreshold int
	// BreakerBackoffMillis/BreakerMaxBackoffMillis bound the breaker's
	// open interval; 0 means not specified.
	BreakerBackoffMillis    int
	BreakerMaxBackoffMillis int
	// CacheTTLMillis bounds result-cache freshness: -1 not specified,
	// 0 means entries never expire.
	CacheTTLMillis int
	// PriorityHeader names the HTTP header carrying the admission class;
	// empty means not specified.
	PriorityHeader string
}

// Default returns the configuration used when a key is absent.
func Default() Config {
	return Config{Engine: "fastbfs", Device: "hdd", SeekScale: 1, BatchSize: -1,
		Shed: -1, BreakerThreshold: -1, CacheTTLMillis: -1}
}

// Parse reads a runtime-settings file. Unknown keys are rejected —
// unlike the dataset config, a typo in a tuning knob should not pass
// silently. Blank lines and '#' comments are ignored.
func Parse(r io.Reader) (Config, error) {
	cfg := Default()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return cfg, fmt.Errorf("runconfig: line %d: missing '=': %q", lineno, line)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if err := cfg.set(key, val); err != nil {
			return cfg, fmt.Errorf("runconfig: line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return cfg, fmt.Errorf("runconfig: %w", err)
	}
	return cfg, cfg.Validate()
}

func (c *Config) set(key, val string) error {
	var err error
	switch key {
	case "engine":
		c.Engine = val
	case "root":
		var v uint64
		v, err = strconv.ParseUint(val, 10, 32)
		c.Root = graph.VertexID(v)
	case "memory_budget":
		c.MemoryBudget, err = parseBytes(val)
	case "threads":
		c.Threads, err = strconv.Atoi(val)
	case "stream_buf":
		var v uint64
		v, err = parseBytes(val)
		c.StreamBufSize = int(v)
	case "prefetch_buffers":
		c.PrefetchBuffers, err = strconv.Atoi(val)
	case "partitions":
		c.Partitions, err = strconv.Atoi(val)
	case "max_iterations":
		c.MaxIterations, err = strconv.Atoi(val)
	case "scatter_workers":
		c.ScatterWorkers, err = strconv.Atoi(val)
	case "direction":
		c.Direction, err = xstream.ParseDirection(val)
	case "codec":
		c.Codec, err = graph.ParseCodec(val)
	case "reorder":
		c.Reorder, err = strconv.ParseBool(val)
	case "trim_start_iteration":
		c.TrimStartIteration, err = strconv.Atoi(val)
	case "trim_visited_fraction":
		c.TrimVisitedFraction, err = strconv.ParseFloat(val, 64)
	case "disable_trimming":
		c.DisableTrimming, err = strconv.ParseBool(val)
	case "disable_selective_scheduling":
		c.DisableSelectiveScheduling, err = strconv.ParseBool(val)
	case "stay_buf_size":
		var v uint64
		v, err = parseBytes(val)
		c.StayBufSize = int(v)
	case "stay_buf_count":
		c.StayBufCount, err = strconv.Atoi(val)
	case "grace_period":
		c.GracePeriod, err = strconv.ParseFloat(val, 64)
	case "grace_wall_ms":
		c.GraceWallMillis, err = strconv.Atoi(val)
	case "residency_budget":
		c.ResidencyBudget, err = core.ParseResidencyBudget(val)
	case "sim":
		c.Sim, err = strconv.ParseBool(val)
	case "device":
		c.Device = val
	case "seek_scale":
		c.SeekScale, err = strconv.ParseFloat(val, 64)
	case "additional_disk":
		c.AdditionalDisk, err = strconv.ParseBool(val)
	case "stay_disk_bandwidth_frac":
		c.StayDiskBandwidthFrac, err = strconv.ParseFloat(val, 64)
	case "batch_size":
		c.BatchSize, err = strconv.Atoi(val)
	case "batch_wait_ms":
		c.BatchWaitMillis, err = strconv.Atoi(val)
	case "shed":
		var b bool
		b, err = strconv.ParseBool(val)
		c.Shed = 0
		if b {
			c.Shed = 1
		}
	case "shed_target_ms":
		c.ShedTargetMillis, err = strconv.Atoi(val)
	case "shed_interval_ms":
		c.ShedIntervalMillis, err = strconv.Atoi(val)
	case "breaker_threshold":
		c.BreakerThreshold, err = strconv.Atoi(val)
	case "breaker_backoff_ms":
		c.BreakerBackoffMillis, err = strconv.Atoi(val)
	case "breaker_max_backoff_ms":
		c.BreakerMaxBackoffMillis, err = strconv.Atoi(val)
	case "cache_ttl_ms":
		c.CacheTTLMillis, err = strconv.Atoi(val)
	case "priority_header":
		c.PriorityHeader = val
	default:
		return fmt.Errorf("unknown key %q", key)
	}
	if err != nil {
		return fmt.Errorf("bad value for %s: %w", key, err)
	}
	return nil
}

// parseBytes accepts plain byte counts and K/M/G suffixes (powers of
// 1024): "256M", "4G", "1048576".
func parseBytes(val string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(val, "K"):
		mult, val = 1<<10, strings.TrimSuffix(val, "K")
	case strings.HasSuffix(val, "M"):
		mult, val = 1<<20, strings.TrimSuffix(val, "M")
	case strings.HasSuffix(val, "G"):
		mult, val = 1<<30, strings.TrimSuffix(val, "G")
	}
	n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

// Validate checks cross-field consistency.
func (c Config) Validate() error {
	switch c.Engine {
	case "fastbfs", "xstream", "graphchi":
	default:
		return fmt.Errorf("runconfig: unknown engine %q", c.Engine)
	}
	switch c.Device {
	case "hdd", "ssd":
	default:
		return fmt.Errorf("runconfig: unknown device %q (hdd or ssd)", c.Device)
	}
	if c.SeekScale <= 0 {
		return fmt.Errorf("runconfig: seek_scale must be positive, got %v", c.SeekScale)
	}
	if c.TrimVisitedFraction < 0 || c.TrimVisitedFraction > 1 {
		return fmt.Errorf("runconfig: trim_visited_fraction %v outside [0,1]", c.TrimVisitedFraction)
	}
	if c.StayDiskBandwidthFrac < 0 {
		return fmt.Errorf("runconfig: stay_disk_bandwidth_frac must be non-negative")
	}
	if c.BatchSize < -1 {
		return fmt.Errorf("runconfig: batch_size must be -1 (unset), 0 (off) or positive, got %d", c.BatchSize)
	}
	if c.BatchWaitMillis < 0 {
		return fmt.Errorf("runconfig: batch_wait_ms must be non-negative, got %d", c.BatchWaitMillis)
	}
	if c.ShedTargetMillis < 0 {
		return fmt.Errorf("runconfig: shed_target_ms must be non-negative, got %d", c.ShedTargetMillis)
	}
	if c.ShedIntervalMillis < 0 {
		return fmt.Errorf("runconfig: shed_interval_ms must be non-negative, got %d", c.ShedIntervalMillis)
	}
	if c.BreakerThreshold < -1 {
		return fmt.Errorf("runconfig: breaker_threshold must be -1 (unset), 0 (off) or positive, got %d", c.BreakerThreshold)
	}
	if c.BreakerBackoffMillis < 0 {
		return fmt.Errorf("runconfig: breaker_backoff_ms must be non-negative, got %d", c.BreakerBackoffMillis)
	}
	if c.BreakerMaxBackoffMillis < 0 {
		return fmt.Errorf("runconfig: breaker_max_backoff_ms must be non-negative, got %d", c.BreakerMaxBackoffMillis)
	}
	if c.CacheTTLMillis < -1 {
		return fmt.Errorf("runconfig: cache_ttl_ms must be -1 (unset) or non-negative, got %d", c.CacheTTLMillis)
	}
	return nil
}

// EngineOptions materializes the engine-shared option set, building the
// simulated devices when Sim is set.
func (c Config) EngineOptions() xstream.Options {
	o := xstream.Options{
		Root:            c.Root,
		MemoryBudget:    c.MemoryBudget,
		Threads:         c.Threads,
		StreamBufSize:   c.StreamBufSize,
		PrefetchBuffers: c.PrefetchBuffers,
		Partitions:      c.Partitions,
		MaxIterations:   c.MaxIterations,
		ScatterWorkers:  c.ScatterWorkers,
		Direction:       c.Direction,
		Codec:           c.Codec,
	}
	if !c.Sim {
		return o
	}
	mk := func(name string) *disksim.Device {
		if c.Device == "ssd" {
			return disksim.SSDScaled(name, c.SeekScale)
		}
		return disksim.HDDScaled(name, c.SeekScale)
	}
	sim := &xstream.SimConfig{
		CPU:      disksim.DefaultCPU(),
		Costs:    disksim.DefaultCosts(),
		MainDisk: mk(c.Device + "0"),
	}
	if c.AdditionalDisk {
		sim.AuxDisk = mk(c.Device + "1")
	}
	if c.StayDiskBandwidthFrac > 0 {
		stay := mk("stay0")
		stay.Bandwidth *= c.StayDiskBandwidthFrac
		sim.StayDisk = stay
	}
	o.Sim = sim
	return o
}

// StoreOptions materializes the store-time settings (codec, degree
// reordering) for tools that build datasets from the same settings
// file. Reverse is always requested — stored datasets carry the
// reverse file so every traversal direction works.
func (c Config) StoreOptions() graph.StoreOptions {
	return graph.StoreOptions{Codec: c.Codec, Reverse: true, ReorderByDegree: c.Reorder}
}

// CoreOptions materializes the full FastBFS option set.
func (c Config) CoreOptions() core.Options {
	return core.Options{
		Base:                       c.EngineOptions(),
		TrimStartIteration:         c.TrimStartIteration,
		TrimVisitedFraction:        c.TrimVisitedFraction,
		DisableTrimming:            c.DisableTrimming,
		DisableSelectiveScheduling: c.DisableSelectiveScheduling,
		StayBufSize:                c.StayBufSize,
		StayBufCount:               c.StayBufCount,
		GracePeriod:                c.GracePeriod,
		GraceWall:                  time.Duration(c.GraceWallMillis) * time.Millisecond,
		ResidencyBudget:            c.ResidencyBudget,
	}
}
