package runconfig

import (
	"strings"
	"testing"
	"time"

	"fastbfs/internal/xstream"
)

func TestParseFull(t *testing.T) {
	in := `
# the paper's example: an additional disk for update and stay streams
engine = fastbfs
root = 42
memory_budget = 256M
threads = 8
stream_buf = 64K
prefetch_buffers = 4
partitions = 3
max_iterations = 100
direction = auto
trim_start_iteration = 2
trim_visited_fraction = 0.25
disable_trimming = false
disable_selective_scheduling = true
stay_buf_size = 1M
stay_buf_count = 16
grace_period = 0.1
grace_wall_ms = 20
residency_budget = 64M
sim = true
device = ssd
seek_scale = 2048
additional_disk = true
stay_disk_bandwidth_frac = 0.5
`
	cfg, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Engine != "fastbfs" || cfg.Root != 42 {
		t.Fatalf("engine/root: %+v", cfg)
	}
	if cfg.MemoryBudget != 256<<20 || cfg.StreamBufSize != 64<<10 || cfg.StayBufSize != 1<<20 {
		t.Fatalf("byte sizes: %+v", cfg)
	}
	if cfg.Threads != 8 || cfg.PrefetchBuffers != 4 || cfg.Partitions != 3 || cfg.MaxIterations != 100 {
		t.Fatalf("ints: %+v", cfg)
	}
	if cfg.TrimStartIteration != 2 || cfg.TrimVisitedFraction != 0.25 || !cfg.DisableSelectiveScheduling {
		t.Fatalf("trim policy: %+v", cfg)
	}
	if cfg.Direction != xstream.DirectionAuto {
		t.Fatalf("direction: %+v", cfg)
	}

	o := cfg.CoreOptions()
	if o.Base.MemoryBudget != 256<<20 || o.Base.Threads != 8 {
		t.Fatalf("core base: %+v", o.Base)
	}
	if o.GraceWall != 20*time.Millisecond || o.GracePeriod != 0.1 || o.StayBufCount != 16 {
		t.Fatalf("core opts: %+v", o)
	}
	if o.ResidencyBudget != 64<<20 {
		t.Fatalf("residency budget: %d", o.ResidencyBudget)
	}
	if o.Base.Direction != xstream.DirectionAuto {
		t.Fatalf("direction not propagated: %+v", o.Base)
	}
	sim := o.Base.Sim
	if sim == nil || sim.MainDisk == nil || sim.AuxDisk == nil || sim.StayDisk == nil {
		t.Fatalf("sim devices missing: %+v", sim)
	}
	if sim.MainDisk.Name != "ssd0" || sim.AuxDisk.Name != "ssd1" {
		t.Fatalf("device names: %s / %s", sim.MainDisk.Name, sim.AuxDisk.Name)
	}
	if sim.StayDisk.Bandwidth != sim.MainDisk.Bandwidth*0.5 {
		t.Fatalf("stay disk bandwidth: %v vs %v", sim.StayDisk.Bandwidth, sim.MainDisk.Bandwidth)
	}
	// Seek scaled down 2048x from the SSD preset.
	if sim.MainDisk.SeekLatency >= 60e-6 {
		t.Fatalf("seek not scaled: %v", sim.MainDisk.SeekLatency)
	}
}

func TestParseDefaults(t *testing.T) {
	cfg, err := Parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Engine != "fastbfs" || cfg.Device != "hdd" || cfg.SeekScale != 1 || cfg.Sim {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.EngineOptions().Sim != nil {
		t.Fatal("wall-clock config produced a simulation")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown key":      "warp_speed = 9\n",
		"missing equals":   "threads 4\n",
		"bad int":          "threads = many\n",
		"bad bool":         "sim = maybe\n",
		"bad bytes":        "memory_budget = 4Q\n",
		"bad engine":       "engine = spark\n",
		"bad device":       "sim = true\ndevice = tape\n",
		"bad seek scale":   "seek_scale = 0\n",
		"bad trim frac":    "trim_visited_fraction = 1.5\n",
		"negative stay bw": "stay_disk_bandwidth_frac = -1\n",
		"bad direction":    "direction = sideways\n",
	}
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestParseBytesSuffixes(t *testing.T) {
	for in, want := range map[string]uint64{
		"123": 123,
		"4K":  4096,
		"2M":  2 << 20,
		"3G":  3 << 30,
		"1 K": 1024, // inner space trimmed
	} {
		got, err := parseBytes(in)
		if err != nil || got != want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
}

func TestParseOverloadKeys(t *testing.T) {
	in := `
shed = true
shed_target_ms = 30
shed_interval_ms = 150
breaker_threshold = 3
breaker_backoff_ms = 250
breaker_max_backoff_ms = 4000
cache_ttl_ms = 60000
priority_header = X-Tier
`
	cfg, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shed != 1 || cfg.ShedTargetMillis != 30 || cfg.ShedIntervalMillis != 150 {
		t.Fatalf("shed keys: %+v", cfg)
	}
	if cfg.BreakerThreshold != 3 || cfg.BreakerBackoffMillis != 250 || cfg.BreakerMaxBackoffMillis != 4000 {
		t.Fatalf("breaker keys: %+v", cfg)
	}
	if cfg.CacheTTLMillis != 60000 || cfg.PriorityHeader != "X-Tier" {
		t.Fatalf("cache/priority keys: %+v", cfg)
	}
}

func TestParseOverloadDefaultsUnset(t *testing.T) {
	// The tri-state keys must default to "not specified" (-1) so the
	// daemon's flag > runconfig > env chain can tell silence from zero.
	cfg, err := Parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shed != -1 || cfg.BreakerThreshold != -1 || cfg.CacheTTLMillis != -1 {
		t.Fatalf("unset sentinels: shed=%d breaker_threshold=%d cache_ttl_ms=%d, want -1/-1/-1",
			cfg.Shed, cfg.BreakerThreshold, cfg.CacheTTLMillis)
	}
	if cfg.ShedTargetMillis != 0 || cfg.ShedIntervalMillis != 0 || cfg.PriorityHeader != "" {
		t.Fatalf("zero-value keys: %+v", cfg)
	}
	if _, err := Parse(strings.NewReader("shed = false\nbreaker_threshold = 0\n")); err != nil {
		t.Fatalf("explicit off values rejected: %v", err)
	}
}

func TestParseOverloadErrors(t *testing.T) {
	cases := map[string]string{
		"bad shed bool":        "shed = maybe\n",
		"negative shed target": "shed_target_ms = -5\n",
		"negative interval":    "shed_interval_ms = -1\n",
		"bad breaker":          "breaker_threshold = -2\n",
		"negative backoff":     "breaker_backoff_ms = -1\n",
		"negative max backoff": "breaker_max_backoff_ms = -10\n",
		"bad cache ttl":        "cache_ttl_ms = -2\n",
	}
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}
