// Package errs defines the sentinel errors shared by the engines, the
// serving layer and the public fastbfs API. They live in their own
// internal package so that internal/core, internal/xstream,
// internal/graphchi, internal/algo and internal/serve can all produce
// them without importing the public facade (which imports them back and
// re-exports them as fastbfs.ErrGraphNotFound et al.).
//
// Callers match with errors.Is; every error returned by an engine or the
// service wraps the appropriate sentinel plus the underlying cause, so
// both errors.Is(err, errs.ErrCancelled) and errors.Is(err,
// context.DeadlineExceeded) work on a deadline-expired query.
package errs

import "errors"

var (
	// ErrGraphNotFound reports that the named graph (its config or edge
	// file) does not exist on the volume.
	ErrGraphNotFound = errors.New("graph not found")

	// ErrCancelled reports that a query's context was cancelled or its
	// deadline expired; the wrapped cause distinguishes the two.
	ErrCancelled = errors.New("query cancelled")

	// ErrBusy reports that the service's admission control rejected a
	// query because the in-flight limit and wait queue are both full.
	ErrBusy = errors.New("service saturated")

	// ErrBadOptions reports an invalid query or option set (root outside
	// the vertex space, weighted graph passed to a BFS engine, unknown
	// algorithm or engine, ...).
	ErrBadOptions = errors.New("bad options")

	// ErrClosed reports that the service is draining or closed and no
	// longer admits queries.
	ErrClosed = errors.New("service closed")

	// ErrCorrupted reports that a file failed its integrity check: a
	// framed update/stay file with a bad checksum, a truncated frame
	// stream, or an unreadable checkpoint manifest. Where semantics
	// allow (a corrupted stay file is a subset of an input that still
	// exists) the engines recover instead of returning it.
	ErrCorrupted = errors.New("data corrupted")

	// ErrIOFailed reports an I/O error that survived the stream layer's
	// bounded retries (or was permanent to begin with) and could not be
	// degraded around. The wrapped cause is the last underlying error.
	ErrIOFailed = errors.New("i/o failed after retries")

	// ErrBatchAbandoned is the cancellation cause the serving layer's
	// batcher attaches when every member of a coalesced batch left
	// (cancelled or timed out) before the shared run finished, so the
	// run itself was stopped. Individual queries never see it directly:
	// each reports its own ErrCancelled with its own context's cause.
	ErrBatchAbandoned = errors.New("batch abandoned")

	// ErrDeadlineHopeless reports that deadline-aware admission refused a
	// query at Submit because its context deadline cannot survive the
	// predicted queue wait plus execution time (or it aged out of the
	// wait queue CoDel-style). Unlike ErrCancelled the query never ran
	// and never burned an execution slot; the client should retry after
	// the Retry-After hint, with a looser deadline, or with allow_stale.
	ErrDeadlineHopeless = errors.New("deadline hopeless")

	// ErrInternal reports that a query died on a server-side defect — a
	// panic in an engine or serving goroutine, recovered and isolated to
	// that one query. The daemon stays up; the stack is in the log.
	ErrInternal = errors.New("internal error")

	// ErrUnavailable reports that the graph's circuit breaker is open:
	// recent queries failed consecutively on ErrIOFailed/ErrCorrupted,
	// so the service fails fast instead of grinding a sick volume. The
	// breaker half-opens after a backoff and probes with one real query.
	ErrUnavailable = errors.New("graph unavailable")
)
