package errs_test

import (
	"errors"
	"fmt"
	"testing"

	"fastbfs/internal/errs"
)

// TestSentinelsAreDistinct pins the contract every layer relies on:
// each sentinel matches itself through wrapping and never matches a
// sibling, so exit codes and HTTP statuses derived with errors.Is can
// not alias.
func TestSentinelsAreDistinct(t *testing.T) {
	all := []error{
		errs.ErrGraphNotFound,
		errs.ErrCancelled,
		errs.ErrBusy,
		errs.ErrBadOptions,
		errs.ErrClosed,
		errs.ErrCorrupted,
		errs.ErrIOFailed,
	}
	for i, s := range all {
		wrapped := fmt.Errorf("layer a: %w", fmt.Errorf("layer b: %w", s))
		if !errors.Is(wrapped, s) {
			t.Errorf("sentinel %d lost through wrapping: %v", i, wrapped)
		}
		for j, other := range all {
			if i != j && errors.Is(wrapped, other) {
				t.Errorf("sentinel %d aliases sentinel %d", i, j)
			}
		}
	}
}

// TestChainCarriesBothSentinelAndCause mirrors how the stream layer
// wraps: an exhausted retry carries ErrIOFailed plus the device error.
func TestChainCarriesBothSentinelAndCause(t *testing.T) {
	cause := errors.New("device vanished")
	err := fmt.Errorf("stream: reading upd_3: %w: %w", errs.ErrIOFailed, cause)
	if !errors.Is(err, errs.ErrIOFailed) || !errors.Is(err, cause) {
		t.Fatalf("chain %v should match both the sentinel and the cause", err)
	}
	if errors.Is(err, errs.ErrCorrupted) {
		t.Fatalf("chain %v must not match ErrCorrupted", err)
	}
}
