package xstream

import (
	"testing"

	"fastbfs/internal/bfs"
	"fastbfs/internal/gen"
	"fastbfs/internal/graph"
	"fastbfs/internal/storage"
)

// checkAgainstReference runs the engine and the in-memory reference BFS
// and verifies levels match and the tree validates.
func checkAgainstReference(t *testing.T, m graph.Meta, edges []graph.Edge, root graph.VertexID, opts Options) *Result {
	t.Helper()
	vol := storage.NewMem()
	if err := graph.Store(vol, m, edges); err != nil {
		t.Fatal(err)
	}
	opts.Root = root
	res, err := Run(vol, m.Name, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bfs.Run(m, edges, root)
	if err != nil {
		t.Fatal(err)
	}
	got := &bfs.Result{Root: root, Level: res.Levels, Parent: res.Parents, Visited: res.Visited}
	if err := bfs.Equal(ref, got); err != nil {
		t.Fatalf("engine disagrees with reference: %v", err)
	}
	if err := bfs.Validate(m, edges, got); err != nil {
		t.Fatalf("engine tree invalid: %v", err)
	}
	return res
}

// smallOpts forces out-of-core operation with several partitions.
func smallOpts() Options {
	return Options{
		MemoryBudget:  4096, // tiny: many partitions, never in-memory
		StreamBufSize: 512,
		Sim:           DefaultSim(),
	}
}

func TestXStreamPath(t *testing.T) {
	m, edges, _ := gen.Path(50)
	res := checkAgainstReference(t, m, edges, 0, smallOpts())
	if res.Visited != 50 {
		t.Fatalf("visited = %d", res.Visited)
	}
	// A 50-vertex path forces ~50 iterations of full-graph streaming.
	if len(res.Metrics.Iterations) < 50 {
		t.Fatalf("iterations = %d", len(res.Metrics.Iterations))
	}
}

func TestXStreamStarAndTree(t *testing.T) {
	m, edges, _ := gen.Star(200)
	res := checkAgainstReference(t, m, edges, 0, smallOpts())
	if res.Visited != 200 {
		t.Fatalf("star visited = %d", res.Visited)
	}
	m, edges, _ = gen.BinaryTree(255)
	checkAgainstReference(t, m, edges, 0, smallOpts())
}

func TestXStreamRMAT(t *testing.T) {
	m, edges, err := gen.RMAT(9, 8, gen.Graph500(), 13)
	if err != nil {
		t.Fatal(err)
	}
	root := maxDegreeVertex(m, edges)
	res := checkAgainstReference(t, m, edges, root, smallOpts())
	if res.Visited < m.Vertices/10 {
		t.Fatalf("visited only %d of %d", res.Visited, m.Vertices)
	}
}

func TestXStreamRootWithNoOutEdges(t *testing.T) {
	m := graph.Meta{Name: "deadroot", Vertices: 5, Edges: 2}
	edges := []graph.Edge{{Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	res := checkAgainstReference(t, m, edges, 0, smallOpts())
	if res.Visited != 1 {
		t.Fatalf("visited = %d, want 1", res.Visited)
	}
	if len(res.Metrics.Iterations) != 1 {
		t.Fatalf("iterations = %d, want 1", len(res.Metrics.Iterations))
	}
}

func TestXStreamDisconnected(t *testing.T) {
	m := graph.Meta{Name: "islands", Vertices: 10, Edges: 3}
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 5, Dst: 6}, {Src: 6, Dst: 7}}
	res := checkAgainstReference(t, m, edges, 0, smallOpts())
	if res.Visited != 2 {
		t.Fatalf("visited = %d", res.Visited)
	}
}

func TestXStreamSelfLoopsParallelEdges(t *testing.T) {
	m := graph.Meta{Name: "messy", Vertices: 4, Edges: 6}
	edges := []graph.Edge{
		{Src: 0, Dst: 0}, {Src: 0, Dst: 1}, {Src: 0, Dst: 1},
		{Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
	}
	checkAgainstReference(t, m, edges, 0, smallOpts())
}

func TestXStreamRereadsWholeGraphEveryIteration(t *testing.T) {
	m, edges, _ := gen.Path(20)
	vol := storage.NewMem()
	if err := graph.Store(vol, m, edges); err != nil {
		t.Fatal(err)
	}
	opts := smallOpts()
	res, err := Run(vol, m.Name, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Metrics.Iterations {
		if it.EdgesStreamed != int64(m.Edges) {
			t.Fatalf("iteration %d streamed %d edges, want the full %d", it.Index, it.EdgesStreamed, m.Edges)
		}
	}
}

func TestXStreamInMemoryFastPath(t *testing.T) {
	m, edges, _ := gen.BinaryTree(1000)
	opts := Options{
		MemoryBudget: 1 << 30, // everything fits
		Sim:          DefaultSim(),
	}
	res := checkAgainstReference(t, m, edges, 0, opts)
	// In-memory mode: the dataset is read exactly once.
	if res.Metrics.BytesRead != int64(m.DataBytes()) {
		t.Fatalf("in-memory read %d bytes, want one dataset pass %d", res.Metrics.BytesRead, m.DataBytes())
	}
	if res.Metrics.BytesWritten != 0 {
		t.Fatalf("in-memory wrote %d bytes", res.Metrics.BytesWritten)
	}
}

func TestXStreamInMemoryMuchFasterThanStreaming(t *testing.T) {
	m, edges, err := gen.RMAT(10, 8, gen.Graph500(), 3)
	if err != nil {
		t.Fatal(err)
	}
	root := maxDegreeVertex(m, edges)
	vol := storage.NewMem()
	if err := graph.Store(vol, m, edges); err != nil {
		t.Fatal(err)
	}
	slow, err := Run(vol, m.Name, Options{Root: root, MemoryBudget: 16 << 10, Sim: DefaultSim()})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(vol, m.Name, Options{Root: root, MemoryBudget: 1 << 30, Sim: DefaultSim()})
	if err != nil {
		t.Fatal(err)
	}
	if !(fast.Metrics.ExecTime < slow.Metrics.ExecTime/2) {
		t.Fatalf("in-memory %.4fs not ≪ streaming %.4fs", fast.Metrics.ExecTime, slow.Metrics.ExecTime)
	}
}

func TestXStreamWallClockMode(t *testing.T) {
	m, edges, _ := gen.BinaryTree(100)
	vol := storage.NewMem()
	if err := graph.Store(vol, m, edges); err != nil {
		t.Fatal(err)
	}
	res, err := Run(vol, m.Name, Options{MemoryBudget: 2048, StreamBufSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 100 {
		t.Fatalf("visited = %d", res.Visited)
	}
	if res.Metrics.ExecTime <= 0 {
		t.Fatal("wall-clock exec time not recorded")
	}
	if len(res.Metrics.Devices) != 0 {
		t.Fatal("wall mode should have no simulated devices")
	}
}

func TestXStreamCleansUpWorkingFiles(t *testing.T) {
	m, edges, _ := gen.BinaryTree(50)
	vol := storage.NewMem()
	if err := graph.Store(vol, m, edges); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(vol, m.Name, Options{MemoryBudget: 1024, Sim: DefaultSim()}); err != nil {
		t.Fatal(err)
	}
	for _, f := range vol.List() {
		if f != graph.EdgeFileName(m.Name) && f != graph.ConfFileName(m.Name) && f != graph.ReverseFileName(m.Name) {
			t.Fatalf("leftover working file %s", f)
		}
	}
}

func TestXStreamKeepFiles(t *testing.T) {
	m, edges, _ := gen.BinaryTree(50)
	vol := storage.NewMem()
	graph.Store(vol, m, edges)
	if _, err := Run(vol, m.Name, Options{MemoryBudget: 1024, Sim: DefaultSim(), KeepFiles: true}); err != nil {
		t.Fatal(err)
	}
	if len(vol.List()) <= 2 {
		t.Fatal("KeepFiles left nothing behind")
	}
}

func TestXStreamErrors(t *testing.T) {
	vol := storage.NewMem()
	if _, err := Run(vol, "absent", Options{Sim: DefaultSim()}); err == nil {
		t.Error("missing graph accepted")
	}
	m, edges, _ := gen.Path(5)
	graph.Store(vol, m, edges)
	if _, err := Run(vol, m.Name, Options{Root: 5, Sim: DefaultSim()}); err == nil {
		t.Error("out-of-range root accepted")
	}
}

func TestRuntimeInMemoryThreshold(t *testing.T) {
	vol := storage.NewMem()
	m, edges, _ := gen.Path(100) // 99 edges = 792 bytes
	graph.Store(vol, m, edges)
	opts := Options{MemoryBudget: 100}
	opts.SetDefaults(EngineName)
	opts.MemoryBudget = 100
	rt, err := NewRuntime(vol, m.Name, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rt.InMemory() {
		t.Error("100-byte budget reported in-memory")
	}
	opts.MemoryBudget = 1 << 20
	rt, err = NewRuntime(vol, m.Name, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.InMemory() {
		t.Error("1 MiB budget for a 792-byte graph not in-memory")
	}
}

func TestMoreThreadsDoNotHelpIOBoundRun(t *testing.T) {
	// Fig. 8: disk-based BFS gains nothing from threads, and
	// oversubscription beyond the core count hurts slightly.
	m, edges, err := gen.RMAT(9, 8, gen.Graph500(), 13)
	if err != nil {
		t.Fatal(err)
	}
	root := maxDegreeVertex(m, edges)
	vol := storage.NewMem()
	graph.Store(vol, m, edges)
	run := func(threads int) float64 {
		res, err := Run(vol, m.Name, Options{Root: root, MemoryBudget: 32 << 10, Threads: threads, Sim: DefaultSim()})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.ExecTime
	}
	t1, t4, t8 := run(1), run(4), run(8)
	if t4 > t1 {
		t.Fatalf("4 threads slower than 1: %v vs %v", t4, t1)
	}
	if (t1-t4)/t1 > 0.5 {
		t.Fatalf("threads helped too much for an I/O-bound run: t1=%v t4=%v", t1, t4)
	}
	if t8 < t4 {
		t.Fatalf("8 threads on 4 cores faster than 4: %v vs %v", t8, t4)
	}
}

func maxDegreeVertex(m graph.Meta, edges []graph.Edge) graph.VertexID {
	deg := graph.Degrees(m.Vertices, edges)
	best := graph.VertexID(0)
	var bd uint32
	for v, d := range deg {
		if d > bd {
			best, bd = graph.VertexID(v), d
		}
	}
	return best
}
