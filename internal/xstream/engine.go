package xstream

import (
	"context"
	"fmt"

	"fastbfs/internal/errs"
	"fastbfs/internal/graph"
	"fastbfs/internal/metrics"
	"fastbfs/internal/obs"
	"fastbfs/internal/storage"
	"fastbfs/internal/stream"
)

// EngineName identifies X-Stream in metrics and file prefixes.
const EngineName = "xstream"

// Run executes X-Stream BFS over the stored graph graphName on vol.
//
// The loop implements X-Stream's staged scatter/gather: for each
// partition in each iteration, the gather of iteration i and the scatter
// of iteration i+1 run back-to-back on the same loaded vertex set,
// halving vertex-file traffic ("the up-to-date vertices generated in the
// gather phase of last iteration could be immediately used as the input
// for the scatter phase of the next iteration", §III). Two update-stream
// sets alternate roles per iteration so the gather's input is never
// tainted by the scatter's output.
//
// X-Stream streams the full edge set of every partition every iteration
// — it "indiscriminately traverses the whole graph in every iteration to
// exploit sequential disk bandwidth" (§IV-B1). That is the baseline
// behaviour FastBFS improves on.
func Run(vol storage.Volume, graphName string, opts Options) (*Result, error) {
	return RunContext(context.Background(), vol, graphName, opts)
}

// RunContext is Run bound to a cancellation context: the engine polls
// ctx at iteration and partition boundaries and returns an error
// wrapping errs.ErrCancelled once it is done, with every working file
// and stream buffer released.
func RunContext(ctx context.Context, vol storage.Volume, graphName string, opts Options) (*Result, error) {
	opts.SetDefaults(EngineName)
	rt, err := NewRuntimeContext(ctx, vol, graphName, opts)
	if err != nil {
		return nil, err
	}
	if rt.Meta.Weighted {
		return nil, fmt.Errorf("xstream: BFS takes unweighted graphs; %s is weighted: %w", graphName, errs.ErrBadOptions)
	}
	defer rt.Cleanup()
	if rt.InMemory() {
		return RunInMemory(rt, EngineName, nil)
	}
	return runStreaming(rt)
}

func runStreaming(rt *Runtime) (*Result, error) {
	run := metrics.Run{Engine: EngineName, SwitchIteration: -1}
	tr := rt.Tracer()
	ctr := obs.NewEngineCounters(tr)
	pool := rt.NewScatterPool(ctr)
	dir, fellBack, err := rt.ResolveDirection()
	if err != nil {
		return nil, err
	}
	if fellBack {
		run.DirectionFallback = true
		ctr.DirectionFallbacks.Add(1)
	}
	ds := NewDirState(rt, dir)
	ctr.SwitchIteration.Set(-1)
	runSpan := tr.Span("run").Attr("partitions", int64(rt.Parts.P()))
	prep := runSpan.Child("load")
	if _, err := rt.Prepare(); err != nil {
		return nil, err
	}
	prep.Attr("edges", int64(rt.Meta.Edges)).End()

	maxIter := rt.Opts.MaxIterations
	if maxIter <= 0 {
		maxIter = int(rt.Meta.Vertices) + 1
	}

	in, out := 0, 1 // update stream set roles, switched per iteration
	var visited uint64
	// Frontier bitmaps for bottom-up iterations (allocated at the first
	// switch): frontier holds the current level's vertices, next
	// collects the level being formed. carryFrontier is the size of a
	// frontier formed by a bottom-up pass, carried into the next
	// iteration's metrics (and the skip-gather scatter).
	var frontier, next *Bitset
	var carryFrontier uint64
	// unvisitedIn tracks each partition's still-unvisited vertex count
	// during a bottom-up streak (recounted by every transition pass):
	// a partition with none can produce no candidate and is skipped
	// wholesale — no vertex load, no reverse scan.
	var unvisitedIn []int64
	prevBottom := false

	for iter := 0; iter < maxIter; iter++ {
		if err := rt.Checkpoint(); err != nil {
			return nil, err
		}
		bottom := ds.Decide(iter)
		if bottom != prevBottom {
			ctr.DirectionSwitches.Add(1)
		}
		itSpan := runSpan.Child("iteration").SetIter(iter)
		ctr.Iteration.Set(int64(iter))

		if bottom {
			if frontier == nil {
				frontier = NewBitset(rt.Meta.Vertices)
				next = NewBitset(rt.Meta.Vertices)
				unvisitedIn = make([]int64, rt.Parts.P())
				ctr.SwitchIteration.Set(int64(ds.SwitchIteration))
			}
			itRow := metrics.Iteration{Index: iter, BottomUp: true}
			if !prevBottom {
				// Transition pass: the previous top-down iteration left
				// update files; gather them normally (forming this
				// level the top-down way) while building its frontier
				// bitmap for the in-edge pass below and recounting each
				// partition's unvisited vertices for the skip rule.
				frontier.Clear()
				var aNewly uint64
				var aDeg float64
				for p := 0; p < rt.Parts.P(); p++ {
					if err := rt.Checkpoint(); err != nil {
						return nil, err
					}
					lds := itSpan.Child("load").SetPart(p)
					v, err := rt.LoadVerts(p)
					lds.End()
					if err != nil {
						return nil, err
					}
					gs := itSpan.Child("gather").SetPart(p)
					newly, applied, err := gather(rt, v, rt.UpdateFile(in, p), uint32(iter))
					gs.Attr("applied", applied).End()
					if err != nil {
						return nil, err
					}
					unvisitedIn[p] = 0
					for i, lv := range v.Level {
						if lv == uint32(iter) {
							vid := v.Lo + graph.VertexID(i)
							frontier.Set(vid)
							aDeg += float64(rt.OutDeg[vid])
						} else if lv == NoLevel {
							unvisitedIn[p]++
						}
					}
					if newly > 0 {
						svs := itSpan.Child("load").SetPart(p)
						err = rt.SaveVerts(p, v)
						svs.End()
						if err != nil {
							return nil, err
						}
					}
					ctr.UpdatesApplied.Add(applied)
					ctr.Visited.Add(int64(newly))
					itRow.NewlyVisited += newly
					itRow.Updates += applied
					aNewly += newly
				}
				visited += aNewly
				ds.RecordFrontier(aNewly, aDeg, true)
				itRow.Frontier = aNewly
			} else {
				itRow.Frontier = carryFrontier
			}

			if !rt.revReady {
				// First bottom-up pass: split the reverse-edge input now
				// — lazy, so a run that never switches pays nothing for
				// it, and late, so the visited filter (which the
				// transition gather just extended) drops as many dead
				// in-edges as possible.
				rs := itSpan.Child("reverse-split")
				if err := rt.EnsureReverse(); err != nil {
					return nil, err
				}
				rs.End()
			}

			next.Clear()
			newly, scanned, skipped, degSum, err := bottomUpPass(rt, pool, ctr, frontier, next, unvisitedIn, uint32(iter), itSpan)
			if err != nil {
				return nil, err
			}
			visited += newly
			ds.RecordFrontier(newly, degSum, true)
			ctr.BottomUpIters.Add(1)
			itRow.SkippedPartitions = skipped
			run.Skipped += skipped
			ctr.Skipped.Add(int64(skipped))
			itRow.NewlyVisited += newly
			itRow.EdgesStreamed += scanned
			carryFrontier = newly
			frontier, next = next, frontier

			run.Iterations = append(run.Iterations, itRow)
			ctr.Frontier.Set(int64(itRow.Frontier))
			ctr.BytesRead.Set(rt.BytesRead)
			ctr.BytesWritten.Set(rt.BytesWritten)
			itSpan.Attr("frontier", int64(itRow.Frontier)).
				Attr("new", int64(itRow.NewlyVisited)).
				Attr("edges", itRow.EdgesStreamed).
				Attr("bottomup", 1).End()
			tr.EmitCounters()
			if !prevBottom && iter > 0 {
				for p := 0; p < rt.Parts.P(); p++ {
					rt.Vol.Remove(rt.UpdateFile(in, p))
				}
			}
			in, out = out, in
			prevBottom = true
			if newly == 0 {
				break
			}
			continue
		}

		// A top-down iteration right after a bottom-up one has no update
		// files to gather: the bottom-up pass already formed this level's
		// frontier in the vertex state.
		skipGather := prevBottom
		prevBottom = false
		var candDegTotal float64
		sh, err := stream.NewShuffler(rt.Vol, rt.Parts, rt.AuxTiming(), rt.Opts.StreamBufSize,
			func(p int) string { return rt.UpdateFile(out, p) })
		if err != nil {
			return nil, err
		}
		sh.SetAsync() // update streams are write-behind with a gather barrier
		itRow := metrics.Iteration{Index: iter}

		for p := 0; p < rt.Parts.P(); p++ {
			if err := rt.Checkpoint(); err != nil {
				sh.Abort()
				return nil, err
			}
			// Open the scatter input ahead of the gather so its
			// read-ahead overlaps the update streaming (the prototype's
			// "several stream buffers for reading edges and writing
			// updates", §III).
			lds := itSpan.Child("load").SetPart(p)
			edgeScan, err := openEdgeScanner(rt, rt.EdgeFile(p))
			if err != nil {
				sh.Abort()
				return nil, err
			}
			var v *Verts
			if iter == 0 {
				v = rt.InitVerts(p)
				if rt.MarkRoot(v) {
					itRow.NewlyVisited++
					visited++
					ctr.Visited.Add(1)
				}
				lds.End()
			} else {
				v, err = rt.LoadVerts(p)
				lds.End()
				if err != nil {
					edgeScan.Close()
					sh.Abort()
					return nil, err
				}
				if !skipGather {
					gs := itSpan.Child("gather").SetPart(p)
					newly, applied, err := gather(rt, v, rt.UpdateFile(in, p), uint32(iter))
					gs.Attr("applied", applied).End()
					if err != nil {
						edgeScan.Close()
						sh.Abort()
						return nil, err
					}
					ctr.UpdatesApplied.Add(applied)
					ctr.Visited.Add(int64(newly))
					itRow.NewlyVisited += newly
					itRow.Updates += applied // updates applied this iteration were generated last iteration
					visited += newly
				}
			}
			// X-Stream scatters every partition unconditionally.
			ss := itSpan.Child("scatter").SetPart(p)
			scanned, emitted, candDeg, err := scatter(rt, pool, v, edgeScan, uint32(iter), sh, ctr)
			ss.Attr("edges", scanned).Attr("emitted", emitted).End()
			if err != nil {
				sh.Abort()
				return nil, err
			}
			candDegTotal += candDeg
			itRow.EdgesStreamed += scanned
			svs := itSpan.Child("load").SetPart(p)
			err = rt.SaveVerts(p, v)
			svs.End()
			if err != nil {
				sh.Abort()
				return nil, err
			}
		}
		itRow.Frontier = itRow.NewlyVisited
		if iter == 0 {
			itRow.Frontier = 1
		}
		if skipGather {
			itRow.Frontier = carryFrontier
		}
		var emittedTotal int64
		for _, c := range sh.Counts() {
			emittedTotal += c
		}
		shs := itSpan.Child("shuffle")
		if err := sh.Close(); err != nil {
			return nil, err
		}
		shs.Attr("updates", emittedTotal).End()
		rt.BytesWritten += shufflerBytes(sh)
		for p, op := range sh.LastOps() {
			rt.RegisterReady(rt.UpdateFile(out, p), op)
		}
		// The scatter emits one update per frontier out-edge, so
		// emittedTotal is exactly this frontier's out-degree sum.
		ds.RecordFrontier(itRow.Frontier, float64(emittedTotal), !skipGather)
		ds.RecordScatter(emittedTotal, candDegTotal)
		run.Iterations = append(run.Iterations, itRow)
		ctr.Frontier.Set(int64(itRow.Frontier))
		ctr.BytesRead.Set(rt.BytesRead)
		ctr.BytesWritten.Set(rt.BytesWritten)
		itSpan.Attr("frontier", int64(itRow.Frontier)).
			Attr("new", int64(itRow.NewlyVisited)).
			Attr("edges", itRow.EdgesStreamed).End()
		tr.EmitCounters()

		// Delete the consumed update set and switch roles.
		if iter > 0 && !skipGather {
			for p := 0; p < rt.Parts.P(); p++ {
				rt.Vol.Remove(rt.UpdateFile(in, p))
			}
		}
		in, out = out, in

		if emittedTotal == 0 {
			break
		}
	}
	runSpan.Attr("visited", int64(visited)).End()
	tr.EmitCounters()

	res, err := rt.CollectResult()
	if err != nil {
		return nil, err
	}
	res.Visited = visited
	run.Visited = visited
	run.BottomUpIterations = int(ds.BottomUpIters)
	run.DirectionSwitches = int(ds.Switches)
	run.SwitchIteration = ds.SwitchIteration
	rt.FinishMetrics(&run)
	res.Metrics = run
	return res, nil
}

// bottomUpPass runs one bottom-up iteration over every partition:
// stream the partition's reverse-edge file, and for each still-unvisited
// vertex keep the winning frontier parent (see direction.go for the
// byte-identity winner rule). Newly visited vertices get level iter+1
// and their bits in next. A partition whose unvisited count has reached
// zero is skipped wholesale — it can yield no candidate, so neither its
// vertex file nor its reverse stream is touched — and a scanned
// partition that discovered nothing skips its vertex write-back.
// Classification runs on the pool's workers against read-only vertex
// state; winners are resolved at merge (chunk order) and applied only
// after the pool drains, so the pass is race-free and byte-identical
// for any worker count.
func bottomUpPass(rt *Runtime, pool *stream.ScatterPool, ctr obs.EngineCounters, frontier, next *Bitset, unvisitedIn []int64, iter uint32, itSpan *obs.Span) (newly uint64, scanned int64, skipped int, degSum float64, err error) {
	for p := 0; p < rt.Parts.P(); p++ {
		if err := rt.Checkpoint(); err != nil {
			return newly, scanned, skipped, degSum, err
		}
		if unvisitedIn[p] == 0 {
			skipped++
			continue
		}
		lds := itSpan.Child("load").SetPart(p)
		v, err := rt.LoadVerts(p)
		lds.End()
		if err != nil {
			return newly, scanned, skipped, degSum, err
		}
		bs := itSpan.Child("bottomup").SetPart(p)
		n, sc, dg, err := bottomUpPartition(rt, pool, ctr, v, p, frontier, next, iter)
		bs.Attr("new", int64(n)).Attr("edges", sc).End()
		if err != nil {
			return newly, scanned, skipped, degSum, err
		}
		newly += n
		scanned += sc
		degSum += dg
		unvisitedIn[p] -= int64(n)
		if n > 0 {
			svs := itSpan.Child("load").SetPart(p)
			err = rt.SaveVerts(p, v)
			svs.End()
			if err != nil {
				return newly, scanned, skipped, degSum, err
			}
		}
	}
	return newly, scanned, skipped, degSum, nil
}

// bottomUpPartition scans one partition's reverse-edge file against the
// frontier bitmap. Candidates (unvisited vertex, frontier in-neighbor)
// are routed by the in-neighbor's partition; the merge keeps, per
// vertex, the candidate with the smallest source partition, first seen
// winning ties — exactly the parent top-down's first-update-wins gather
// would have picked.
func bottomUpPartition(rt *Runtime, pool *stream.ScatterPool, ctr obs.EngineCounters, v *Verts, p int, frontier, next *Bitset, iter uint32) (newly uint64, scanned int64, degSum float64, err error) {
	rt.AwaitFile(rt.RevEdgeFile(p))
	sc, err := stream.NewEdgeScanner(rt.Vol, rt.RevEdgeFile(p), rt.MainTiming(), rt.Opts.StreamBufSize)
	if err != nil {
		return 0, 0, 0, err
	}
	defer sc.Close()
	sc.Prefetch(rt.Opts.PrefetchBuffers)
	lo, n := v.Lo, len(v.Level)
	bestPart := make([]int32, n)
	bestParent := make([]graph.VertexID, n)
	for i := range bestPart {
		bestPart[i] = -1
	}
	var candidates int64
	classify := func(edges []graph.Edge, out *stream.Shard) {
		for _, r := range edges {
			out.Scanned++
			i := int(r.Src - lo)
			if i < 0 || i >= n {
				out.Err = fmt.Errorf("xstream: reverse edge %v outside partition [%d,%d)", r, lo, int(lo)+n)
				return
			}
			if v.Level[i] == NoLevel && frontier.Get(r.Dst) {
				pu := rt.Parts.Of(r.Dst)
				out.ByPart[pu] = append(out.ByPart[pu], graph.Update{Dst: r.Src, Parent: r.Dst})
				out.Emitted++
			}
		}
	}
	merge := func(s *stream.Shard) error {
		scanned += s.Scanned
		candidates += s.Emitted
		ctr.Edges.Add(s.Scanned)
		for pu, cands := range s.ByPart {
			for _, c := range cands {
				i := int(c.Dst - lo)
				if bestPart[i] < 0 || int32(pu) < bestPart[i] {
					bestPart[i] = int32(pu)
					bestParent[i] = c.Parent
				}
			}
		}
		return nil
	}
	if err := pool.RunScanner(sc, classify, merge); err != nil {
		return newly, scanned, degSum, err
	}
	rt.BytesRead += sc.BytesRead()
	for i := range bestPart {
		if bestPart[i] >= 0 {
			v.Level[i] = iter + 1
			v.Parent[i] = bestParent[i]
			vid := lo + graph.VertexID(i)
			next.Set(vid)
			rt.VisitedBits.Set(vid)
			newly++
			degSum += float64(rt.OutDeg[vid])
		}
	}
	ctr.Visited.Add(int64(newly))
	rt.Compute(float64(scanned)*rt.Costs.ScatterPerEdge +
		float64(candidates)*rt.Costs.GatherPerUpdate +
		float64(newly)*rt.Costs.PerVertex)
	return newly, scanned, degSum, nil
}

// shufflerBytes sums bytes flushed by a shuffler's writers.
func shufflerBytes(sh *stream.Shuffler) int64 {
	var n int64
	for _, c := range sh.BytesPerPartition() {
		n += c
	}
	return n
}

// gather streams partition p's update file and applies updates: an
// unvisited destination becomes visited at `level` with the update's
// parent. Returns (newly visited, updates applied).
func gather(rt *Runtime, v *Verts, updFile string, level uint32) (newly uint64, applied int64, err error) {
	rt.AwaitFile(updFile)
	sc, err := stream.NewUpdateScanner(rt.Vol, updFile, rt.AuxTiming(), rt.Opts.StreamBufSize)
	if err != nil {
		return 0, 0, err
	}
	defer sc.Close()
	sc.Prefetch(rt.Opts.PrefetchBuffers)
	for {
		u, ok, err := sc.Next()
		if err != nil {
			return newly, applied, err
		}
		if !ok {
			break
		}
		applied++
		i := int(u.Dst - v.Lo)
		if i < 0 || i >= len(v.Level) {
			return newly, applied, fmt.Errorf("xstream: update %v outside partition [%d,%d)", u, v.Lo, int(v.Lo)+len(v.Level))
		}
		if v.Level[i] == NoLevel {
			v.Level[i] = level
			v.Parent[i] = u.Parent
			newly++
			if rt.VisitedBits != nil {
				rt.VisitedBits.Set(u.Dst)
			}
		}
	}
	rt.BytesRead += sc.BytesRead()
	rt.Compute(float64(applied) * rt.Costs.GatherPerUpdate)
	return newly, applied, nil
}

// openEdgeScanner opens an edge input with the configured read-ahead,
// first waiting out the file's write-behind barrier if one is pending.
func openEdgeScanner(rt *Runtime, name string) (*stream.Scanner[graph.Edge], error) {
	rt.AwaitFile(name)
	sc, err := stream.NewEdgeScanner(rt.Vol, name, rt.MainTiming(), rt.Opts.StreamBufSize)
	if err != nil {
		return nil, err
	}
	sc.Prefetch(rt.Opts.PrefetchBuffers)
	return sc, nil
}

// scatter streams a partition's edge input through the worker pool;
// edges whose source is in the current frontier (level == iter) emit an
// update to the destination. Classification (frontier test + partition
// routing) runs on pool workers; the scanner and the shuffler's writers
// stay on the engine thread, and shards merge in chunk order, so the
// update files and all accounting are identical for any worker count
// (see internal/stream/parallel.go). candDeg is the out-degree sum over
// emitted update targets — the direction heuristic's look-ahead at the
// next level's edge volume — computed only when the run may switch
// (OutDeg non-nil), 0 otherwise.
func scatter(rt *Runtime, pool *stream.ScatterPool, v *Verts, sc *stream.Scanner[graph.Edge], iter uint32, sh *stream.Shuffler, ctr obs.EngineCounters) (scanned, emitted int64, candDeg float64, err error) {
	defer sc.Close()
	lo, n := v.Lo, len(v.Level)
	classify := func(edges []graph.Edge, out *stream.Shard) {
		for _, e := range edges {
			out.Scanned++
			i := int(e.Src - lo)
			if i < 0 || i >= n {
				out.Err = fmt.Errorf("xstream: edge %v outside partition [%d,%d)", e, lo, int(lo)+n)
				return
			}
			if v.Level[i] == iter {
				p := rt.Parts.Of(e.Dst)
				out.ByPart[p] = append(out.ByPart[p], graph.Update{Dst: e.Dst, Parent: e.Src})
				out.Emitted++
			}
		}
	}
	merge := func(s *stream.Shard) error {
		scanned += s.Scanned
		emitted += s.Emitted
		ctr.Edges.Add(s.Scanned)
		ctr.UpdatesEmitted.Add(s.Emitted)
		for p, us := range s.ByPart {
			if len(us) == 0 {
				continue
			}
			if rt.OutDeg != nil {
				for _, u := range us {
					candDeg += float64(rt.OutDeg[u.Dst])
				}
			}
			if err := sh.AppendTo(p, us); err != nil {
				return err
			}
		}
		return nil
	}
	if err := pool.RunScanner(sc, classify, merge); err != nil {
		return scanned, emitted, candDeg, err
	}
	rt.BytesRead += sc.BytesRead()
	rt.Compute(float64(scanned)*rt.Costs.ScatterPerEdge + float64(emitted)*rt.Costs.AppendPerUpdate)
	return scanned, emitted, candDeg, nil
}

// RunInMemory is the fast path when the whole graph fits the memory
// budget: one streaming load of the edge list, then pure in-memory
// iterations (the paper's Fig. 9 cliff at 4 GB). The trim callback, when
// non-nil, lets FastBFS compact the in-memory edge array each iteration;
// X-Stream passes nil and rescans everything. engineName labels the
// metrics record.
func RunInMemory(rt *Runtime, engineName string, trim func(edges []graph.Edge, level []uint32) []graph.Edge) (*Result, error) {
	run := metrics.Run{Engine: engineName, SwitchIteration: -1}
	tr := rt.Tracer()
	ctr := obs.NewEngineCounters(tr)
	runSpan := tr.Span("run").Attr("in_memory", 1)
	lds := runSpan.Child("load")

	// One full sequential load of the dataset.
	sc, err := stream.NewEdgeScanner(rt.Vol, graph.EdgeFileName(rt.Meta.Name), rt.MainTiming(), rt.Opts.StreamBufSize)
	if err != nil {
		return nil, err
	}
	// The loaded edge list lives in a stream.Resident — the same
	// representation the FastBFS residency cache promotes partitions
	// into — so the in-memory path is "everything resident from the
	// start" rather than a separate structure.
	live := stream.NewResident(int64(rt.Meta.Edges))
	for {
		e, ok, err := sc.Next()
		if err != nil {
			sc.Close()
			return nil, err
		}
		if !ok {
			break
		}
		if err := rt.Meta.CheckEdge(e); err != nil {
			sc.Close()
			return nil, err
		}
		if err := live.Append(e); err != nil {
			sc.Close()
			return nil, err
		}
	}
	rt.BytesRead += sc.BytesRead()
	sc.Close()
	ctr.BytesRead.Set(rt.BytesRead)
	lds.Attr("edges", live.Count()).End()

	level := make([]uint32, rt.Meta.Vertices)
	parent := make([]graph.VertexID, rt.Meta.Vertices)
	for i := range level {
		level[i] = NoLevel
		parent[i] = graph.NoVertex
	}
	rt.Compute(float64(rt.Meta.Vertices) * rt.Costs.PerVertex)
	level[rt.Opts.Root] = 0
	parent[rt.Opts.Root] = rt.Opts.Root
	visited := uint64(1)
	ctr.Visited.Add(1)

	maxIter := rt.Opts.MaxIterations
	if maxIter <= 0 {
		maxIter = int(rt.Meta.Vertices) + 1
	}
	// The in-memory path has no destination partitions to route by, so
	// the pool's shards hold a single slot; chunk-order merge still
	// reproduces the sequential update order exactly.
	pool := stream.NewScatterPool(rt.Opts.ScatterWorkers, rt.Opts.StreamBufSize/graph.EdgeBytes, 1)
	pool.ChunkCounter = ctr.ScatterChunks
	pool.BusyCounter = ctr.ScatterBusyNs
	pool.FaultHook = rt.Opts.FaultHook
	ctr.ScatterWorkers.Set(int64(pool.Workers()))
	for iter := uint32(0); int(iter) < maxIter; iter++ {
		if err := rt.Checkpoint(); err != nil {
			return nil, err
		}
		itSpan := runSpan.Child("iteration").SetIter(int(iter))
		ctr.Iteration.Set(int64(iter))
		itRow := metrics.Iteration{Index: int(iter), Frontier: 0}
		ss := itSpan.Child("scatter")
		edges := live.Edges()
		var updates []graph.Update
		err := pool.RunSlice(edges, func(chunk []graph.Edge, out *stream.Shard) {
			for _, e := range chunk {
				if level[e.Src] == iter {
					out.ByPart[0] = append(out.ByPart[0], graph.Update{Dst: e.Dst, Parent: e.Src})
				}
			}
		}, func(s *stream.Shard) error {
			updates = append(updates, s.ByPart[0]...)
			return nil
		})
		if err != nil {
			return nil, err
		}
		itRow.EdgesStreamed = int64(len(edges))
		ctr.Edges.Add(int64(len(edges)))
		ctr.UpdatesEmitted.Add(int64(len(updates)))
		rt.RAMScan(live.Bytes())
		rt.Compute(float64(len(edges))*rt.Costs.ScatterPerEdge + float64(len(updates))*rt.Costs.AppendPerUpdate)
		ss.Attr("edges", int64(len(edges))).Attr("emitted", int64(len(updates))).End()
		gs := itSpan.Child("gather")
		var newly uint64
		for _, u := range updates {
			if level[u.Dst] == NoLevel {
				level[u.Dst] = iter + 1
				parent[u.Dst] = u.Parent
				newly++
			}
		}
		rt.Compute(float64(len(updates)) * rt.Costs.GatherPerUpdate)
		gs.Attr("applied", int64(len(updates))).End()
		ctr.UpdatesApplied.Add(int64(len(updates)))
		ctr.Visited.Add(int64(newly))
		visited += newly
		itRow.Updates = int64(len(updates))
		itRow.NewlyVisited = newly
		if trim != nil {
			ts := itSpan.Child("stay-write")
			before := len(edges)
			live.Replace(trim(edges, level))
			kept := int(live.Count())
			itRow.StayEdges = int64(kept)
			itRow.TrimActive = true
			run.TrimmedEdges += int64(before - kept)
			rt.Compute(float64(before) * rt.Costs.AppendPerStay)
			ts.Attr("stay_edges", int64(kept)).End()
			ctr.StayEdges.Add(int64(kept))
		}
		run.Iterations = append(run.Iterations, itRow)
		ctr.Frontier.Set(int64(newly))
		itSpan.Attr("frontier", int64(itRow.Frontier)).
			Attr("new", int64(newly)).
			Attr("edges", itRow.EdgesStreamed).End()
		tr.EmitCounters()
		if len(updates) == 0 {
			break
		}
	}
	runSpan.Attr("visited", int64(visited)).End()
	tr.EmitCounters()

	res := &Result{Levels: level, Parents: parent, Visited: visited}
	rt.TranslateResult(res)
	run.Visited = visited
	rt.FinishMetrics(&run)
	res.Metrics = run
	return res, nil
}
