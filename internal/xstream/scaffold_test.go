package xstream

import (
	"testing"

	"fastbfs/internal/disksim"
	"fastbfs/internal/gen"
	"fastbfs/internal/graph"
	"fastbfs/internal/storage"
)

func newRuntime(t *testing.T, opts Options) *Runtime {
	t.Helper()
	vol := storage.NewMem()
	m, edges, err := gen.RMAT(8, 8, gen.Graph500(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.Store(vol, m, edges); err != nil {
		t.Fatal(err)
	}
	opts.SetDefaults(EngineName)
	rt, err := NewRuntime(vol, m.Name, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestAwaitFileBarriers(t *testing.T) {
	rt := newRuntime(t, Options{MemoryBudget: 4096, Sim: DefaultSim()})
	dev := rt.Opts.Sim.MainDisk
	op := rt.Clock.WriteAsync(dev, 1<<20, 0) // ~8.7ms on the HDD preset
	rt.RegisterReady("f", op)
	before := rt.Clock.Now()
	rt.AwaitFile("f")
	if !(rt.Clock.Now() > before) {
		t.Fatal("AwaitFile did not wait for the pending write")
	}
	// Second await is a no-op: the barrier was consumed.
	now := rt.Clock.Now()
	rt.AwaitFile("f")
	if rt.Clock.Now() != now {
		t.Fatal("consumed barrier waited again")
	}
	// Unknown files are no-ops; nil registrations are ignored.
	rt.AwaitFile("never-registered")
	rt.RegisterReady("g", nil)
	rt.AwaitFile("g")
	if rt.Clock.Now() != now {
		t.Fatal("no-op awaits advanced the clock")
	}
}

func TestPrepareSplitsEdgesBySource(t *testing.T) {
	rt := newRuntime(t, Options{MemoryBudget: 1024, StreamBufSize: 512, Sim: DefaultSim(), KeepFiles: true})
	counts, err := rt.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for p, c := range counts {
		total += c
		rt.AwaitFile(rt.EdgeFile(p))
		b, err := storage.ReadAll(rt.Vol, rt.EdgeFile(p))
		if err != nil {
			t.Fatal(err)
		}
		// Working files carry the resolved codec (FASTBFS_CODEC may have
		// forced delta), so deframe and decode before interpreting raw
		// records.
		if rt.Codec == graph.CodecDelta {
			magic, payload, err := graph.DeframeAllMagic(b)
			if err != nil || magic != graph.FrameMagicDelta {
				t.Fatalf("partition %d is not an FBD1 stream (magic %#x): %v", p, magic, err)
			}
			if b, err = graph.DecodeDeltaStream(payload); err != nil {
				t.Fatal(err)
			}
		}
		edges, err := graph.BytesToEdges(b)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(edges)) != c {
			t.Fatalf("partition %d: %d edges on disk, Prepare reported %d", p, len(edges), c)
		}
		for _, e := range edges {
			if !rt.Parts.Contains(p, e.Src) {
				t.Fatalf("partition %d holds foreign edge %v", p, e)
			}
		}
	}
	if total != int64(rt.Meta.Edges) {
		t.Fatalf("partitions hold %d edges, graph has %d", total, rt.Meta.Edges)
	}
}

func TestVertexStoreRoundTrip(t *testing.T) {
	rt := newRuntime(t, Options{MemoryBudget: 1024, Sim: DefaultSim(), KeepFiles: true})
	p := rt.Parts.P() - 1
	v := rt.InitVerts(p)
	lo, hi := rt.Parts.Interval(p)
	for i := range v.Level {
		v.Level[i] = uint32(i)
		v.Parent[i] = graph.VertexID(uint64(lo) + uint64(i)%uint64(hi-lo))
	}
	if err := rt.SaveVerts(p, v); err != nil {
		t.Fatal(err)
	}
	got, err := rt.LoadVerts(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Level {
		if got.Level[i] != v.Level[i] || got.Parent[i] != v.Parent[i] {
			t.Fatalf("record %d: (%d,%d) vs (%d,%d)", i, got.Level[i], got.Parent[i], v.Level[i], v.Parent[i])
		}
	}
}

func TestMarkRootOnlyInOwningPartition(t *testing.T) {
	rt := newRuntime(t, Options{Root: 200, MemoryBudget: 1024, Sim: DefaultSim()})
	owner := rt.Parts.Of(200)
	for p := 0; p < rt.Parts.P(); p++ {
		v := rt.InitVerts(p)
		marked := rt.MarkRoot(v)
		if (p == owner) != marked {
			t.Fatalf("partition %d: MarkRoot = %v, owner is %d", p, marked, owner)
		}
		if marked && v.Level[200-int(v.Lo)] != 0 {
			t.Fatal("root not at level 0")
		}
	}
}

func TestCleanupRemovesOnlyOwnPrefix(t *testing.T) {
	rt := newRuntime(t, Options{MemoryBudget: 1024, Sim: DefaultSim()})
	storage.WriteAll(rt.Vol, rt.Opts.FilePrefix+"_scratch", []byte("x"))
	storage.WriteAll(rt.Vol, "unrelated_file", []byte("y"))
	rt.Cleanup()
	if rt.Vol.Exists(rt.Opts.FilePrefix + "_scratch") {
		t.Fatal("own working file survived Cleanup")
	}
	if !rt.Vol.Exists("unrelated_file") {
		t.Fatal("Cleanup deleted a foreign file")
	}
}

func TestTimingHelpersSelectDevices(t *testing.T) {
	sim := DefaultSim()
	sim.AuxDisk = disksim.HDD("hdd1")
	rt := newRuntime(t, Options{MemoryBudget: 1024, Sim: sim})
	if rt.MainTiming().Device != sim.MainDisk {
		t.Fatal("MainTiming wrong device")
	}
	if rt.AuxTiming().Device != sim.AuxDisk {
		t.Fatal("AuxTiming ignored the additional disk")
	}
	rt2 := newRuntime(t, Options{MemoryBudget: 1024, Sim: DefaultSim()})
	if rt2.AuxTiming().Device != rt2.Opts.Sim.MainDisk {
		t.Fatal("single-disk AuxTiming should fall back to the main disk")
	}
	rtWall := newRuntime(t, Options{MemoryBudget: 1024})
	if rtWall.MainTiming().Clock != nil || rtWall.AuxTiming().Clock != nil {
		t.Fatal("wall mode produced a clock")
	}
}

func TestSetDefaults(t *testing.T) {
	var o Options
	o.SetDefaults("enginex")
	if o.MemoryBudget != 1<<30 || o.Threads != 4 || o.StreamBufSize == 0 || o.FilePrefix != "enginex" {
		t.Fatalf("defaults: %+v", o)
	}
	if o.PrefetchBuffers != 2 {
		t.Fatalf("prefetch default = %d", o.PrefetchBuffers)
	}
	o2 := Options{PrefetchBuffers: -1}
	o2.SetDefaults("e")
	if o2.PrefetchBuffers != 0 {
		t.Fatalf("negative prefetch should disable, got %d", o2.PrefetchBuffers)
	}
}
