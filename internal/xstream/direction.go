package xstream

import (
	"fmt"

	"fastbfs/internal/errs"
	"fastbfs/internal/graph"
	"fastbfs/internal/stream"
)

// This file holds the direction-optimizing scaffolding shared by the
// streaming engines: the direction policy type, the Beamer-style switch
// heuristic state, the global frontier bitmap bottom-up iterations
// exchange, and the lazy split of the dataset's reverse-edge file into
// per-partition streams.
//
// The out-of-core formulation (DESIGN.md §12): a top-down iteration
// scatters the frontier's out-edges into shuffled update files; a
// bottom-up iteration instead streams each partition's *in-edges* and,
// for every still-unvisited vertex, looks for a parent in the frontier
// bitmap — no update files at all. To keep results byte-identical to
// top-down, the winning parent for a vertex v must be the same one
// top-down's first-update-wins gather would pick: the minimum over v's
// in-edges of (source partition, original edge position). The scatter
// appends update files in source-partition order, each partition's
// edges in original order, so that pair is exactly top-down's file
// order; bottom-up reproduces it by scanning the reverse partition
// (original order preserved by the split) and keeping, per vertex, the
// candidate with the strictly smallest source partition — first seen
// wins ties, which is the original-position tie-break.

// Direction is a traversal direction policy.
type Direction string

// The three direction policies.
const (
	DirectionTopDown  Direction = "topdown"
	DirectionBottomUp Direction = "bottomup"
	DirectionAuto     Direction = "auto"
)

// Default switch ratios of the hybrid heuristic, matching the
// in-memory reference (internal/bfs.DefaultDirectionOpt).
const (
	DefaultDirectionAlpha = 14
	DefaultDirectionBeta  = 24
)

// ParseDirection parses a direction policy. Empty means topdown (the
// default); anything else unknown is ErrBadOptions.
func ParseDirection(s string) (Direction, error) {
	switch Direction(s) {
	case "", DirectionTopDown:
		return DirectionTopDown, nil
	case DirectionBottomUp:
		return DirectionBottomUp, nil
	case DirectionAuto:
		return DirectionAuto, nil
	}
	return "", fmt.Errorf("xstream: unknown direction %q (want topdown, bottomup or auto): %w", s, errs.ErrBadOptions)
}

// ResolveDirection checks the configured policy against the stored
// dataset: auto without a reverse-edge file falls back to pure
// top-down (fellBack reports it — the serving layer keeps answering
// queries on stale graphs), while an explicit bottomup without one is
// an error.
func (rt *Runtime) ResolveDirection() (dir Direction, fellBack bool, err error) {
	dir = rt.Opts.Direction
	if dir == "" {
		dir = DirectionTopDown
	}
	if dir == DirectionTopDown || graph.HasReverse(rt.Vol, rt.Meta.Name) {
		return dir, false, nil
	}
	if dir == DirectionBottomUp {
		return "", false, fmt.Errorf("xstream: direction bottomup needs the reverse-edge file %s (re-store the graph): %w",
			graph.ReverseFileName(rt.Meta.Name), errs.ErrBadOptions)
	}
	return DirectionTopDown, true, nil
}

// Bitset is a fixed-size bitmap over the vertex space — the frontier
// representation bottom-up iterations exchange. Like OutDeg, it lives
// outside the modelled memory budget (vertices/8 bytes).
type Bitset struct{ w []uint64 }

// NewBitset returns an all-zero bitmap over n vertices.
func NewBitset(n uint64) *Bitset { return &Bitset{w: make([]uint64, (n+63)/64)} }

// Set marks vertex i.
func (b *Bitset) Set(i graph.VertexID) { b.w[i>>6] |= 1 << (uint(i) & 63) }

// Get reports whether vertex i is marked.
func (b *Bitset) Get(i graph.VertexID) bool { return b.w[i>>6]>>(uint(i)&63)&1 == 1 }

// Clear zeroes the bitmap for reuse.
func (b *Bitset) Clear() {
	for i := range b.w {
		b.w[i] = 0
	}
}

// DirState is the per-run direction heuristic state. The engines call
// Decide at the top of every iteration and the Record methods as each
// pass completes; everything in between is plain bookkeeping, so the
// decision sequence is deterministic for a given graph and option set —
// the property the cross-engine equivalence suite rests on.
//
// The α test runs one update wave ahead of the work it avoids: a
// top-down scatter's emitted updates are exactly the candidate set for
// the next level, and summing OutDeg over their targets (RecordScatter)
// bounds that level's out-degree before its own scatter ever runs. When
// α fires, the next iteration gathers the already-written candidate
// wave (the transition pass) and then goes bottom-up — the peak wave it
// predicted is never written. Beamer's "frontier growing" guard keeps α
// from re-firing on the shrinking tail, where the unexplored estimate
// bottoms out. The β test is exact — a bottom-up pass counts its newly
// formed frontier and that frontier's out-degree sum as it runs.
type DirState struct {
	// Conf is the resolved policy; Mode is the mode Decide last chose.
	Conf Direction
	Mode Direction

	// Switches counts mode changes; BottomUpIters counts bottom-up
	// iterations; SwitchIteration is the first bottom-up iteration (-1
	// when the run never switched).
	Switches        int64
	BottomUpIters   int64
	SwitchIteration int

	alpha, beta float64
	vertices    float64
	unexplored  float64
	// lastCount is the size of the most recently formed frontier (β's
	// input). candDeg/candCount describe the last top-down scatter's
	// emitted update wave — the next level's candidates — and prevCand
	// the wave before it (α's growth guard).
	lastCount uint64
	candDeg   float64
	candCount int64
	prevCand  int64
}

// NewDirState builds the heuristic state for a run under the resolved
// policy dir.
func NewDirState(rt *Runtime, dir Direction) *DirState {
	return &DirState{
		Conf: dir, Mode: DirectionTopDown, SwitchIteration: -1,
		alpha: float64(rt.Opts.DirectionAlpha), beta: float64(rt.Opts.DirectionBeta),
		vertices: float64(rt.Meta.Vertices), unexplored: float64(rt.Meta.Edges),
	}
}

// Decide picks iteration iter's mode (true = bottom-up), updating the
// switch accounting. Iteration 0 is always top-down: the root is
// planted during its gather-less first pass and bottom-up needs an
// existing frontier.
func (ds *DirState) Decide(iter int) bool {
	bottom := false
	switch {
	case iter == 0 || ds.Conf == DirectionTopDown:
	case ds.Conf == DirectionBottomUp:
		bottom = true
	case ds.Mode == DirectionBottomUp:
		// β: drop back to top-down once the frontier is small.
		bottom = float64(ds.lastCount) >= ds.vertices/ds.beta
	default:
		// α: go bottom-up once the candidate wave's out-edges dominate
		// the unexplored remainder — and only while the wave is still
		// growing, so the collapsing tail stays top-down.
		bottom = ds.candCount > ds.prevCand && ds.candDeg > ds.unexplored/ds.alpha
	}
	mode := DirectionTopDown
	if bottom {
		mode = DirectionBottomUp
	}
	if mode != ds.Mode {
		ds.Switches++
	}
	ds.Mode = mode
	if bottom {
		ds.BottomUpIters++
		if ds.SwitchIteration < 0 {
			ds.SwitchIteration = iter
		}
	}
	return bottom
}

// RecordFrontier logs a formed frontier: its vertex count and
// out-degree sum. formedNow must be false when the frontier was formed
// (and therefore already recorded) by an earlier iteration — the
// top-down iteration right after a bottom-up one scatters a frontier
// the bottom-up pass built, and subtracting its edges twice would drain
// the unexplored estimate early.
func (ds *DirState) RecordFrontier(count uint64, degSum float64, formedNow bool) {
	ds.lastCount = count
	if formedNow {
		ds.unexplored -= degSum
		if ds.unexplored < 0 {
			ds.unexplored = 0
		}
	}
}

// RecordScatter logs a top-down scatter's emitted update wave: how many
// updates it wrote and the out-degree sum over their target vertices
// (α's look-ahead input).
func (ds *DirState) RecordScatter(emitted int64, candDeg float64) {
	ds.prevCand = ds.candCount
	ds.candCount = emitted
	ds.candDeg = candDeg
}

// RevEdgeFile is partition p's reverse-edge (in-edge) stream: every
// dataset edge u→v with v in partition p, stored as v→u in original
// edge order, in the checksummed framed format.
func (rt *Runtime) RevEdgeFile(p int) string {
	return fmt.Sprintf("%s_redge_%d", rt.Opts.FilePrefix, p)
}

// EnsureReverse lazily splits the dataset's reverse-edge file into
// per-partition streams — the bottom-up analogue of Prepare, routed by
// the in-edge's destination-side vertex. It is called at the first
// top-down→bottom-up transition, never eagerly, so an auto run that
// stays top-down moves exactly the top-down byte count. In-edges of
// vertices already visited at split time (VisitedBits) are dropped:
// those vertices can never be a bottom-up candidate again, and the
// filter is what makes each bottom-up pass read fewer bytes than a
// full edge scan. The split preserves the original edge order inside
// each partition (the byte-identity tie-break) and re-frames each
// stream, so corruption in any reverse partition later surfaces as
// errs.ErrCorrupted.
func (rt *Runtime) EnsureReverse() error {
	if rt.revReady {
		return nil
	}
	tm := rt.MainTiming()
	sc, err := stream.NewEdgeScanner(rt.Vol, graph.ReverseFileName(rt.Meta.Name), tm, rt.Opts.StreamBufSize)
	if err != nil {
		return err
	}
	defer sc.Close()
	outs := make([]*stream.Writer[graph.Edge], rt.Parts.P())
	for p := range outs {
		w, err := stream.NewCodecFramedEdgeWriter(rt.Vol, rt.RevEdgeFile(p), tm, rt.Opts.StreamBufSize, rt.Codec)
		if err != nil {
			for _, o := range outs[:p] {
				o.Abort()
			}
			return err
		}
		w.SetAsync() // write-behind; readers barrier through AwaitFile
		outs[p] = w
	}
	abort := func() {
		for _, o := range outs {
			o.Abort()
		}
	}
	var total uint64
	for {
		r, ok, err := sc.Next()
		if err != nil {
			abort()
			return err
		}
		if !ok {
			break
		}
		if err := rt.Meta.CheckEdge(r); err != nil {
			abort()
			return fmt.Errorf("%w: reverse-edge file %s: %w", errs.ErrCorrupted, graph.ReverseFileName(rt.Meta.Name), err)
		}
		total++
		if rt.VisitedBits != nil && rt.VisitedBits.Get(r.Src) {
			continue // target already has a parent — dead in-edge
		}
		if err := outs[rt.Parts.Of(r.Src)].Append(r); err != nil {
			abort()
			return err
		}
	}
	if total != rt.Meta.Edges {
		abort()
		return fmt.Errorf("%w: reverse-edge file %s has %d edges, config says %d",
			errs.ErrCorrupted, graph.ReverseFileName(rt.Meta.Name), total, rt.Meta.Edges)
	}
	rt.Compute(float64(total) * rt.Costs.ScatterPerEdge)
	for p, o := range outs {
		if err := o.Close(); err != nil {
			return err
		}
		rt.BytesWritten += o.BytesWritten()
		rt.RegisterReady(rt.RevEdgeFile(p), o.LastOp())
	}
	rt.BytesRead += sc.BytesRead()
	rt.revReady = true
	return nil
}
