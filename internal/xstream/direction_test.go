package xstream

import (
	"bytes"
	"errors"
	"testing"

	"fastbfs/internal/errs"
	"fastbfs/internal/gen"
	"fastbfs/internal/graph"
	"fastbfs/internal/storage"
)

func TestParseDirection(t *testing.T) {
	for s, want := range map[string]Direction{
		"": DirectionTopDown, "topdown": DirectionTopDown,
		"bottomup": DirectionBottomUp, "auto": DirectionAuto,
	} {
		got, err := ParseDirection(s)
		if err != nil || got != want {
			t.Errorf("ParseDirection(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"up", "down", "Auto", "hybrid"} {
		if _, err := ParseDirection(s); !errors.Is(err, errs.ErrBadOptions) {
			t.Errorf("ParseDirection(%q) = %v, want ErrBadOptions", s, err)
		}
	}
}

func TestDirStateHeuristic(t *testing.T) {
	rt := &Runtime{Meta: graph.Meta{Vertices: 1000, Edges: 10000},
		Opts: Options{DirectionAlpha: DefaultDirectionAlpha, DirectionBeta: DefaultDirectionBeta}}
	ds := NewDirState(rt, DirectionAuto)
	if ds.Decide(0) {
		t.Fatal("iteration 0 must be top-down")
	}
	// Tiny candidate wave: stay top-down.
	ds.RecordFrontier(1, 5, true)
	ds.RecordScatter(5, 30)
	if ds.Decide(1) {
		t.Fatal("small candidate wave switched to bottom-up")
	}
	// Growing wave whose targets dominate the unexplored edges: α fires.
	ds.RecordFrontier(5, 30, true)
	ds.RecordScatter(400, 6000)
	if !ds.Decide(2) {
		t.Fatal("α did not fire on a dominant candidate wave")
	}
	if ds.SwitchIteration != 2 || ds.Switches != 1 {
		t.Fatalf("switch accounting = iter %d, %d switches", ds.SwitchIteration, ds.Switches)
	}
	// Frontier still large: β keeps bottom-up.
	ds.RecordFrontier(500, 3000, true)
	if !ds.Decide(3) {
		t.Fatal("β fired while the frontier was large")
	}
	// Frontier collapsed below vertices/β: back to top-down.
	ds.RecordFrontier(10, 40, true)
	if ds.Decide(4) {
		t.Fatal("β did not fire on a collapsed frontier")
	}
	// Shrinking tail wave: the growth guard must hold top-down even
	// though the unexplored estimate is nearly drained.
	ds.RecordFrontier(10, 40, false)
	ds.RecordScatter(20, 200)
	if ds.Decide(5) {
		t.Fatal("α re-fired on a shrinking tail wave")
	}
	if ds.Switches != 2 || ds.BottomUpIters != 2 {
		t.Fatalf("switches = %d, bottom-up iters = %d", ds.Switches, ds.BottomUpIters)
	}
}

func TestDirStateForcedModes(t *testing.T) {
	rt := &Runtime{Meta: graph.Meta{Vertices: 100, Edges: 500},
		Opts: Options{DirectionAlpha: DefaultDirectionAlpha, DirectionBeta: DefaultDirectionBeta}}
	td := NewDirState(rt, DirectionTopDown)
	bu := NewDirState(rt, DirectionBottomUp)
	for iter := 0; iter < 5; iter++ {
		if td.Decide(iter) {
			t.Fatalf("forced topdown went bottom-up at %d", iter)
		}
		if got, want := bu.Decide(iter), iter > 0; got != want {
			t.Fatalf("forced bottomup at iter %d = %v, want %v", iter, got, want)
		}
		td.RecordFrontier(50, 100, true)
		bu.RecordFrontier(50, 100, true)
	}
}

// runDir runs xstream on the stored graph with the given direction.
func runDir(t *testing.T, vol storage.Volume, name string, root graph.VertexID, d Direction) *Result {
	t.Helper()
	o := smallOpts()
	o.Root = root
	o.Direction = d
	res, err := Run(vol, name, o)
	if err != nil {
		t.Fatalf("direction %s: %v", d, err)
	}
	return res
}

func sameTree(t *testing.T, a, b *Result, label string) {
	t.Helper()
	for i := range a.Levels {
		if a.Levels[i] != b.Levels[i] || a.Parents[i] != b.Parents[i] {
			t.Fatalf("%s: vertex %d: level %d/%d parent %d/%d", label, i,
				a.Levels[i], b.Levels[i], a.Parents[i], b.Parents[i])
		}
	}
	if a.Visited != b.Visited {
		t.Fatalf("%s: visited %d vs %d", label, a.Visited, b.Visited)
	}
}

func TestXStreamDirectionsByteIdentical(t *testing.T) {
	m, edges, err := gen.RMAT(8, 8, gen.Graph500(), 42)
	if err != nil {
		t.Fatal(err)
	}
	vol := storage.NewMem()
	if err := graph.Store(vol, m, edges); err != nil {
		t.Fatal(err)
	}
	root := maxDegreeVertex(m, edges)
	td := runDir(t, vol, m.Name, root, DirectionTopDown)
	bu := runDir(t, vol, m.Name, root, DirectionBottomUp)
	au := runDir(t, vol, m.Name, root, DirectionAuto)
	sameTree(t, td, bu, "bottomup vs topdown")
	sameTree(t, td, au, "auto vs topdown")
	if td.Metrics.BottomUpIterations != 0 || td.Metrics.SwitchIteration != -1 {
		t.Fatalf("topdown ran %d bottom-up iterations", td.Metrics.BottomUpIterations)
	}
	if bu.Metrics.BottomUpIterations == 0 || bu.Metrics.SwitchIteration != 1 {
		t.Fatalf("forced bottomup: %d bottom-up iterations, switch at %d",
			bu.Metrics.BottomUpIterations, bu.Metrics.SwitchIteration)
	}
	if au.Metrics.BottomUpIterations == 0 {
		t.Fatal("auto never switched on a power-law graph")
	}
	if au.Metrics.TotalBytes() >= td.Metrics.TotalBytes() {
		t.Fatalf("auto moved %d bytes, top-down %d — no win", au.Metrics.TotalBytes(), td.Metrics.TotalBytes())
	}
}

func TestXStreamAutoFallsBackWithoutReverse(t *testing.T) {
	m, edges, _ := gen.BinaryTree(200)
	vol := storage.NewMem()
	if err := graph.Store(vol, m, edges); err != nil {
		t.Fatal(err)
	}
	td := runDir(t, vol, m.Name, 0, DirectionTopDown)
	vol.Remove(graph.ReverseFileName(m.Name)) // a graph stored before .rev existed
	au := runDir(t, vol, m.Name, 0, DirectionAuto)
	sameTree(t, td, au, "auto-fallback vs topdown")
	if !au.Metrics.DirectionFallback {
		t.Fatal("fallback not reported in metrics")
	}
	if au.Metrics.BottomUpIterations != 0 {
		t.Fatal("fallback run still went bottom-up")
	}
	o := smallOpts()
	o.Direction = DirectionBottomUp
	if _, err := Run(vol, m.Name, o); !errors.Is(err, errs.ErrBadOptions) {
		t.Fatalf("explicit bottomup without .rev: err = %v, want ErrBadOptions", err)
	}
}

func TestXStreamCorruptReverseSurfacesErrCorrupted(t *testing.T) {
	m, edges, _ := gen.BinaryTree(300)
	vol := storage.NewMem()
	if err := graph.Store(vol, m, edges); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the framed reverse file: the CRC must
	// catch it during the lazy reverse split, never wrong output.
	name := graph.ReverseFileName(m.Name)
	b, err := storage.ReadAll(vol, name)
	if err != nil {
		t.Fatal(err)
	}
	b = bytes.Clone(b)
	b[len(b)/2] ^= 0x40
	if err := storage.WriteAll(vol, name, b); err != nil {
		t.Fatal(err)
	}
	o := smallOpts()
	o.Direction = DirectionBottomUp
	if _, err := Run(vol, m.Name, o); !errors.Is(err, errs.ErrCorrupted) {
		t.Fatalf("corrupt .rev: err = %v, want ErrCorrupted", err)
	}
}
