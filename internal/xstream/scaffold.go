// Package xstream is a from-scratch implementation of the X-Stream
// edge-centric graph engine (Roy et al., SOSP'13) specialized to BFS —
// the system the FastBFS paper modifies and its primary baseline.
//
// X-Stream partitions the vertex set into balanced intervals, stores
// each partition's out-edges in its own streaming file, and runs
// bulk-synchronous iterations of scatter (stream edges, emit updates
// shuffled by destination partition) and gather (stream updates, apply
// to in-memory vertex state). It never sorts edges — "no preprocessing
// needed" — and re-streams the *entire* edge set every iteration, which
// is exactly the indiscriminate I/O FastBFS trims away.
//
// This package also exports the scaffolding FastBFS shares with
// X-Stream (options, the per-partition vertex store, and the initial
// streaming-partition split), since the paper builds FastBFS by
// modifying X-Stream.
package xstream

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"fastbfs/internal/disksim"
	"fastbfs/internal/errs"
	"fastbfs/internal/graph"
	"fastbfs/internal/metrics"
	"fastbfs/internal/obs"
	"fastbfs/internal/storage"
	"fastbfs/internal/stream"
)

// PerVertexMemBytes is the modelled in-memory footprint per vertex of a
// loaded partition (8 bytes of state plus buffer overhead); the memory
// budget divided by this determines the partition count, as in §II-B
// ("the vertices partitioning makes sure that each partition and its
// intermediate data can fit into memory").
const PerVertexMemBytes = 16

// InMemoryFactor is how many times the binary edge-list size must fit in
// the memory budget before the engine switches to the in-memory fast
// path (edges + an update set + working room, matching the paper's
// observation that rmat22's 768 MB ran in memory at 4 GB but not 2 GB).
const InMemoryFactor = 3

// SimConfig selects simulated-time mode and carries the device and cost
// models. A nil SimConfig in Options means wall-clock mode: the engine
// still moves every byte through the volume but reports elapsed real
// time instead of modelled time.
type SimConfig struct {
	CPU   disksim.CPU
	Costs disksim.Costs
	// MainDisk holds the graph: edge files, vertex files and (for
	// FastBFS in single-disk mode) stay files.
	MainDisk *disksim.Device
	// AuxDisk, when non-nil, is the paper's "additional disk": update
	// streams and the stay-out stream are placed there (Fig. 10).
	AuxDisk *disksim.Device
	// StayDisk, when non-nil, dedicates a device to the stay-out stream
	// ("FastBFS can appoint the stay list writing to a different disk",
	// §II-C2), overriding the per-iteration alternation. With a slow
	// dedicated stay disk the grace-and-cancel path becomes observable.
	StayDisk *disksim.Device
}

// DefaultSim returns a single-HDD simulation matching the paper's
// testbed defaults.
func DefaultSim() *SimConfig {
	return &SimConfig{
		CPU:      disksim.DefaultCPU(),
		Costs:    disksim.DefaultCosts(),
		MainDisk: disksim.HDD("hdd0"),
	}
}

// Clone returns a deep copy of the simulation configuration with fresh
// (zero-state) devices. A disksim.Device accumulates fluid state and
// traffic counters during a run, so concurrent engine runs must never
// share one; the serving layer clones the configured SimConfig per
// query. Clone of nil is nil (wall-clock mode passes through).
func (s *SimConfig) Clone() *SimConfig {
	if s == nil {
		return nil
	}
	return &SimConfig{
		CPU:      s.CPU,
		Costs:    s.Costs,
		MainDisk: s.MainDisk.Clone(),
		AuxDisk:  s.AuxDisk.Clone(),
		StayDisk: s.StayDisk.Clone(),
	}
}

// ScaledSim returns a single-HDD simulation whose positioning cost is
// scaled down by factor, for benchmarks whose datasets are scaled down
// by the same factor from the paper's (see disksim.HDDScaled).
func ScaledSim(factor float64) *SimConfig {
	return &SimConfig{
		CPU:      disksim.DefaultCPU(),
		Costs:    disksim.DefaultCosts(),
		MainDisk: disksim.HDDScaled("hdd0", factor),
	}
}

// Options configures an engine run. The zero value is not usable; call
// (*Options).SetDefaults or fill the fields.
type Options struct {
	// Root is the BFS source vertex.
	Root graph.VertexID
	// MemoryBudget is the working memory in bytes (the paper evaluates
	// 256 MB – 4 GB). It determines the partition count and whether the
	// in-memory fast path triggers. Default 1 GiB.
	MemoryBudget uint64
	// Partitions overrides the partition count derived from
	// MemoryBudget when nonzero. GraphChi uses it because its memory
	// shard holds edges, not just vertices, so its interval count is
	// edge-bound.
	Partitions int
	// Threads is the compute thread count (Fig. 8). Default 4.
	Threads int
	// StreamBufSize is the stream buffer size in bytes. Default 1 MiB.
	StreamBufSize int
	// PrefetchBuffers is the read-ahead depth of edge and update
	// scanners ("the number of edge buffers can be more than one for
	// pre-fetching", §III). Default 2; set negative to disable.
	PrefetchBuffers int
	// ScatterWorkers is the number of goroutines classifying edge
	// chunks in the scatter phase. 0 takes the FASTBFS_WORKERS
	// environment variable if set, else runtime.NumCPU(); negative
	// forces the serial path (1). Results are byte-identical for every
	// setting — see internal/stream/parallel.go for the contract.
	ScatterWorkers int
	// Sim enables simulated timing; nil runs in wall-clock mode.
	Sim *SimConfig
	// FilePrefix namespaces the engine's working files on the volume.
	// Defaults to the engine name.
	FilePrefix string
	// KeepFiles leaves working files on the volume after the run
	// (useful for debugging and tests).
	KeepFiles bool
	// MaxIterations caps the iteration count as a safety net; default
	// vertices + 1.
	MaxIterations int
	// Tracer, when non-nil, receives spans and live counters from the
	// run (see internal/obs). In sim mode the virtual clock is installed
	// as its time source, so traces are in simulated seconds. Nil
	// disables tracing at zero cost.
	Tracer *obs.Tracer
	// RetryAttempts overrides the transient-fault retry budget (total
	// tries per I/O operation, first call included). 0 keeps
	// stream.DefaultRetryAttempts; chaos runs with high injected fault
	// rates raise it so exhaustion stays improbable.
	RetryAttempts int
	// Direction selects the traversal direction policy for the streaming
	// engines: pure top-down (the default), pure bottom-up after the
	// root iteration, or the Beamer-style automatic hybrid (see
	// internal/bfs/directionopt.go for the in-memory reference). Bottom-up
	// iterations stream the reverse-edge partitions split from the
	// dataset's .rev file; `auto` on a graph stored without one falls
	// back to pure top-down (counted, never an error), while an explicit
	// `bottomup` on such a graph is ErrBadOptions. Empty takes the
	// FASTBFS_DIRECTION environment variable, else topdown. The
	// in-memory fast path ignores the direction (it has no device
	// traffic to save).
	Direction Direction
	// DirectionAlpha and DirectionBeta are the hybrid heuristic's switch
	// ratios (Beamer's α and β): switch to bottom-up when the frontier's
	// emitted-edge count exceeds unexplored/α, back to top-down when the
	// frontier shrinks below vertices/β. Defaults 14 and 24, matching
	// the in-memory reference.
	DirectionAlpha int
	DirectionBeta  int
	// Codec selects the edge codec for the run's working files —
	// partition splits, stay and reverse-stay rewrites, the reverse
	// split. Empty takes the FASTBFS_CODEC environment variable, then
	// the dataset's stored codec, then fixed; the resolution happens in
	// NewRuntimeContext (see Runtime.Codec).
	Codec graph.Codec
	// FaultHook, when non-nil, runs before every scatter chunk — the
	// chaos-testing seam behind the daemon's -panic-root flag. A hook
	// that panics exercises panic isolation: the scatter pool recovers
	// it into a stream.PanicError (wrapping errs.ErrInternal) that
	// aborts only the run that raised it.
	FaultHook func()
}

// SetDefaults fills unset fields with defaults.
func (o *Options) SetDefaults(engineName string) {
	if o.MemoryBudget == 0 {
		o.MemoryBudget = 1 << 30
	}
	if o.Threads == 0 {
		o.Threads = 4
	}
	if o.StreamBufSize == 0 {
		o.StreamBufSize = stream.DefaultBufSize
	}
	if o.PrefetchBuffers == 0 {
		o.PrefetchBuffers = 2
	}
	if o.PrefetchBuffers < 0 {
		o.PrefetchBuffers = 0
	}
	if o.ScatterWorkers == 0 {
		if s := os.Getenv("FASTBFS_WORKERS"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				o.ScatterWorkers = n
			}
		}
	}
	if o.ScatterWorkers == 0 {
		o.ScatterWorkers = runtime.NumCPU()
	}
	if o.ScatterWorkers < 1 {
		o.ScatterWorkers = 1
	}
	if o.FilePrefix == "" {
		o.FilePrefix = engineName
	}
	if o.Direction == "" {
		if s := os.Getenv("FASTBFS_DIRECTION"); s != "" {
			if d, err := ParseDirection(s); err == nil {
				o.Direction = d
			}
		}
	}
	if o.Direction == "" {
		o.Direction = DirectionTopDown
	}
	if o.Codec == "" {
		if s := os.Getenv("FASTBFS_CODEC"); s != "" {
			if c, err := graph.ParseCodec(s); err == nil {
				o.Codec = c
			}
		}
	}
	if o.DirectionAlpha <= 0 {
		o.DirectionAlpha = DefaultDirectionAlpha
	}
	if o.DirectionBeta <= 0 {
		o.DirectionBeta = DefaultDirectionBeta
	}
}

// Result is the output of an engine run: the BFS tree plus the
// measurement record.
type Result struct {
	Levels  []uint32
	Parents []graph.VertexID
	Visited uint64
	Metrics metrics.Run
}

// Runtime bundles the pieces of a run shared by X-Stream and FastBFS:
// the volume, partitioning, virtual clock (nil in wall mode), byte
// accounting and naming.
type Runtime struct {
	Vol   storage.Volume
	Meta  graph.Meta
	Parts *graph.Partitioning
	Opts  Options

	// ctx is the run's cancellation context (never nil). Engines poll it
	// through Checkpoint at iteration and partition boundaries.
	ctx context.Context

	Clock *disksim.Clock
	Costs disksim.Costs

	// Retry is the run's transient-fault retry policy; every stream the
	// engines build through MainTiming/AuxTiming shares it, so its
	// counters are the run-wide retry/failure totals.
	Retry *stream.Retrier

	// Codec is the resolved working-file codec (never empty): Options.Codec
	// when set, else the dataset's stored codec. Engines pass it to every
	// edge-carrying working-file writer; readers sniff, so mixed inputs
	// (raw dataset + delta stays) always stream correctly.
	Codec graph.Codec

	// Perm, non-nil iff the dataset was stored with degree reordering, maps
	// between original and stored vertex labels. The runtime operates
	// entirely in stored space — Opts.Root is remapped at construction —
	// and results are translated back at the collection boundary, so
	// callers never see stored labels.
	Perm *graph.Permutation

	BytesRead    int64
	BytesWritten int64

	// fileReady maps a file name to its pending write-behind barrier:
	// the last background flush that must complete before a reader can
	// depend on the file's contents (time-model only; data is always
	// complete).
	fileReady map[string]*disksim.AsyncOp

	wallStart time.Time

	// countVol is set when the volume is a storage.Counting wrapper; its
	// delta over the run feeds DeviceStats in wall mode, where there is
	// no simulated device to report on.
	countVol *storage.Counting
	startIO  storage.IOStats

	// OutDeg is the per-vertex out-degree table, built during Prepare
	// when the run may go bottom-up (Direction != topdown). Bottom-up
	// iterations use it to compute the newly-formed frontier's
	// out-degree sum for the switch-back heuristic. Like the frontier
	// bitmaps, its 4 bytes/vertex live outside the modelled memory
	// budget (the paper's budget covers partition state, not global
	// scalars).
	OutDeg []uint32

	// VisitedBits mirrors the vertex files' visited state in RAM
	// (vertices/8 bytes, outside the modelled budget like OutDeg),
	// maintained only when the run may go bottom-up. The lazy
	// reverse-edge split consults it to drop in-edges of vertices that
	// are already visited at split time — they can never yield a
	// bottom-up candidate, and dropping them is what makes bottom-up
	// iterations read fewer bytes than a full edge scan.
	VisitedBits *Bitset

	// revReady flags that PrepareReverse has split the dataset's
	// reverse-edge file into per-partition streams; the split is lazy —
	// paid only at the first top-down→bottom-up transition, so an auto
	// run that never switches moves exactly the top-down byte count.
	revReady bool
}

// Tracer returns the run's tracer (nil when tracing is disabled; all
// obs methods are no-ops on nil).
func (rt *Runtime) Tracer() *obs.Tracer { return rt.Opts.Tracer }

// Context returns the run's cancellation context (never nil).
func (rt *Runtime) Context() context.Context { return rt.ctx }

// Checkpoint polls the run's context: it returns nil while the run may
// continue, and an error wrapping both errs.ErrCancelled and the
// context's cause once the query is cancelled or past its deadline.
// Engines call it at iteration and partition boundaries — the points
// where abandoning the run leaves no half-written state behind (the
// deferred Cleanup and stay-writer drain then release buffers and
// working files).
func (rt *Runtime) Checkpoint() error {
	select {
	case <-rt.ctx.Done():
		return fmt.Errorf("%s: %w: %w", rt.Opts.FilePrefix, errs.ErrCancelled, context.Cause(rt.ctx))
	default:
		return nil
	}
}

// RegisterReady records a file's write-behind barrier.
func (rt *Runtime) RegisterReady(name string, op *disksim.AsyncOp) {
	if op == nil {
		return
	}
	rt.fileReady[name] = op
}

// AwaitFile stalls the clock until the named file's write-behind barrier
// has completed (no-op for files written synchronously or in wall mode).
func (rt *Runtime) AwaitFile(name string) {
	op, ok := rt.fileReady[name]
	if !ok {
		return
	}
	delete(rt.fileReady, name)
	if rt.Clock != nil {
		rt.Clock.WaitUntil(rt.Clock.BgCompletion(op))
	}
}

// NewRuntime validates options against a stored graph and prepares the
// shared run state with a background (never-cancelled) context.
func NewRuntime(vol storage.Volume, graphName string, opts Options) (*Runtime, error) {
	return NewRuntimeContext(context.Background(), vol, graphName, opts)
}

// NewRuntimeContext is NewRuntime bound to a cancellation context: the
// run's engine observes ctx through Runtime.Checkpoint.
func NewRuntimeContext(ctx context.Context, vol storage.Volume, graphName string, opts Options) (*Runtime, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// FASTBFS_FAULTS wraps the volume with seeded fault injection — the
	// single chaos entry point, so every engine, the CLI and the serving
	// layer get it uniformly. A volume that is already Faulty (a test
	// drove the injection itself) is left alone.
	if spec := os.Getenv("FASTBFS_FAULTS"); spec != "" {
		if _, already := vol.(*storage.Faulty); !already {
			fs, err := storage.ParseFaultSpec(spec)
			if err != nil {
				return nil, fmt.Errorf("xstream: FASTBFS_FAULTS: %w: %v", errs.ErrBadOptions, err)
			}
			if fs.Enabled() {
				vol = storage.NewFaulty(vol, fs)
			}
		}
	}
	retry := stream.NewRetrier(ctx, uint64(opts.Root)+1)
	retry.Attempts = opts.RetryAttempts
	retry.RetryCounter = opts.Tracer.Counter(obs.CtrIORetries)
	retry.FailureCounter = opts.Tracer.Counter(obs.CtrIOFailures)
	var m graph.Meta
	if err := retry.Do("load meta "+graphName, func() error {
		var e error
		m, e = graph.LoadMeta(vol, graphName)
		return e
	}); err != nil {
		return nil, err
	}
	if uint64(opts.Root) >= m.Vertices {
		return nil, fmt.Errorf("xstream: root %d outside vertex space [0,%d): %w", opts.Root, m.Vertices, errs.ErrBadOptions)
	}
	if _, err := ParseDirection(string(opts.Direction)); err != nil {
		return nil, err
	}
	codec, err := graph.ParseCodec(string(opts.Codec))
	if err != nil {
		return nil, fmt.Errorf("xstream: %w", err)
	}
	if opts.Codec == "" {
		codec = m.EdgeCodec()
	}
	// A reordered dataset's edges carry stored labels; load the stored
	// permutation and move the root into stored space (validated above in
	// the caller's original space). Results translate back on collection.
	var perm *graph.Permutation
	if m.Reordered {
		if err := retry.Do("load perm "+graphName, func() error {
			var e error
			perm, e = graph.LoadPerm(vol, graphName, m.Vertices)
			return e
		}); err != nil {
			return nil, err
		}
		opts.Root = perm.ToStored(opts.Root)
	}
	p := opts.Partitions
	if p <= 0 {
		p = graph.PartitionsForMemory(m.Vertices, PerVertexMemBytes, opts.MemoryBudget)
	}
	if uint64(p) > m.Vertices {
		p = int(m.Vertices)
	}
	parts, err := graph.NewPartitioning(m.Vertices, p)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{Vol: vol, Meta: m, Parts: parts, Opts: opts, ctx: ctx, Retry: retry,
		Codec: codec, Perm: perm,
		fileReady: make(map[string]*disksim.AsyncOp), wallStart: time.Now()}
	if opts.Sim != nil {
		if opts.Sim.MainDisk == nil {
			return nil, fmt.Errorf("xstream: SimConfig requires MainDisk")
		}
		rt.Clock = disksim.NewClock(opts.Sim.CPU, opts.Threads)
		rt.Costs = opts.Sim.Costs
		// Trace in simulated seconds: span timestamps then line up with
		// the clock-derived ExecTime in the metrics record.
		opts.Tracer.SetTimeSource(rt.Clock.Now)
	}
	// Find a Counting volume even under the fault-injection wrapper.
	inner := vol
	for {
		if f, ok := inner.(*storage.Faulty); ok {
			inner = f.Inner()
			continue
		}
		break
	}
	if cv, ok := inner.(*storage.Counting); ok {
		rt.countVol = cv
		rt.startIO = cv.Stats()
	}
	return rt, nil
}

// InMemory reports whether the whole graph fits the memory budget.
func (rt *Runtime) InMemory() bool {
	need := InMemoryFactor*rt.Meta.DataBytes() + 2*PerVertexMemBytes*rt.Meta.Vertices
	return rt.Opts.MemoryBudget >= need
}

// MainTiming returns the stream timing for the main disk. Wall mode
// still carries the run's retry policy — retries are wall-clock-only
// and exist in both modes.
func (rt *Runtime) MainTiming() stream.Timing {
	if rt.Clock == nil {
		return stream.Timing{Retry: rt.Retry}
	}
	return stream.Timing{Clock: rt.Clock, Device: rt.Opts.Sim.MainDisk, Retry: rt.Retry,
		MemBW: rt.Costs.MemBandwidth}
}

// AuxTiming returns the stream timing for the update/stay-out disk —
// the additional disk when configured, otherwise the main disk.
func (rt *Runtime) AuxTiming() stream.Timing {
	if rt.Clock == nil {
		return stream.Timing{Retry: rt.Retry}
	}
	if rt.Opts.Sim.AuxDisk != nil {
		return stream.Timing{Clock: rt.Clock, Device: rt.Opts.Sim.AuxDisk, Retry: rt.Retry,
			MemBW: rt.Costs.MemBandwidth}
	}
	return rt.MainTiming()
}

// NewScatterPool builds the run's scatter worker pool. The chunk size
// is the stream buffer's edge capacity, so chunk boundaries line up
// with scanner refills and — critically — depend only on the buffer
// size, never on the worker count, keeping output bytes deterministic.
func (rt *Runtime) NewScatterPool(ctr obs.EngineCounters) *stream.ScatterPool {
	chunk := rt.Opts.StreamBufSize / graph.EdgeBytes
	sp := stream.NewScatterPool(rt.Opts.ScatterWorkers, chunk, rt.Parts.P())
	sp.ChunkCounter = ctr.ScatterChunks
	sp.BusyCounter = ctr.ScatterBusyNs
	sp.FaultHook = rt.Opts.FaultHook
	ctr.ScatterWorkers.Set(int64(sp.Workers()))
	return sp
}

// Compute charges thread-scaled compute work (no-op in wall mode).
func (rt *Runtime) Compute(seconds float64) {
	if rt.Clock != nil {
		rt.Clock.Compute(seconds)
	}
}

// RAMScan charges the serial memory-bandwidth cost of scanning n bytes
// of a resident in-memory partition. A RAM scan is a single sequential
// sweep, so it does not scale with the thread count the way per-edge
// classification compute does; it is also what replaces a device read,
// so it must hit the clock even when per-edge costs are zeroed. No-op
// in wall mode or when the cost model has no memory bandwidth.
func (rt *Runtime) RAMScan(n int64) {
	if rt.Clock == nil || rt.Costs.MemBandwidth <= 0 || n <= 0 {
		return
	}
	rt.Clock.ComputeSerial(float64(n) / rt.Costs.MemBandwidth)
}

// FinishMetrics fills the timing and device fields of a metrics record.
func (rt *Runtime) FinishMetrics(run *metrics.Run) {
	run.Graph = rt.Meta.Name
	run.BytesRead = rt.BytesRead
	run.BytesWritten = rt.BytesWritten
	run.IORetries = rt.Retry.Retries()
	run.IOFailures = rt.Retry.Failures()
	if rt.Clock != nil {
		run.ExecTime = rt.Clock.Now()
		run.IOWait = rt.Clock.IOWait()
		run.ComputeTime = rt.Clock.ComputeTime()
		devs := []*disksim.Device{rt.Opts.Sim.MainDisk}
		if rt.Opts.Sim.AuxDisk != nil {
			devs = append(devs, rt.Opts.Sim.AuxDisk)
		}
		if rt.Opts.Sim.StayDisk != nil {
			devs = append(devs, rt.Opts.Sim.StayDisk)
		}
		for _, d := range devs {
			run.Devices = append(run.Devices, metrics.DeviceStats{
				Name: d.Name, BytesRead: d.BytesRead(), BytesWritten: d.BytesWritten(),
				BusyTime: d.BusyTime(), Ops: d.Ops(),
			})
		}
	} else {
		run.ExecTime = time.Since(rt.wallStart).Seconds()
		if rt.countVol != nil {
			// Wall mode has no simulated devices; report the counting
			// volume's delta over the run instead.
			d := rt.countVol.Stats().Sub(rt.startIO)
			run.Devices = append(run.Devices, metrics.DeviceStats{
				Name: rt.countVol.Name(), BytesRead: d.BytesRead, BytesWritten: d.BytesWritten,
				Ops: d.ReadOps + d.WriteOps,
			})
		}
	}
}

// File names for the engine's working set.

// EdgeFile is partition p's out-edge file.
func (rt *Runtime) EdgeFile(p int) string { return fmt.Sprintf("%s_edge_%d", rt.Opts.FilePrefix, p) }

// VertexFile is partition p's vertex-state file.
func (rt *Runtime) VertexFile(p int) string { return fmt.Sprintf("%s_vtx_%d", rt.Opts.FilePrefix, p) }

// UpdateFile is partition p's update file in stream set `set` (0 or 1 —
// the two update stream sets whose roles switch each iteration, §III).
func (rt *Runtime) UpdateFile(set, p int) string {
	return fmt.Sprintf("%s_upd%d_%d", rt.Opts.FilePrefix, set, p)
}

// StayFile is partition p's stay file generated in iteration iter. The
// name carries the full iteration (a per-generation name, not a
// two-slot alternation): the engine may hold up to three generations at
// once — the current input, the fallback it replaced (kept until the
// input survives a verified read) and the pending write — and under
// checkpointing a file named by the last durable manifest must never be
// truncated by a later Create. Superseded generations are removed as
// soon as they stop being referenced.
func (rt *Runtime) StayFile(iter, p int) string {
	return fmt.Sprintf("%s_stay%d_%d", rt.Opts.FilePrefix, iter, p)
}

// Cleanup removes every working file with the run's prefix.
func (rt *Runtime) Cleanup() {
	if rt.Opts.KeepFiles {
		return
	}
	prefix := rt.Opts.FilePrefix + "_"
	for _, name := range rt.Vol.List() {
		if len(name) > len(prefix) && name[:len(prefix)] == prefix {
			rt.Vol.Remove(name)
		}
	}
}

// Prepare splits the stored raw edge list into per-partition streaming
// edge files — X-Stream's cheap, sort-free setup pass (one sequential
// read of the dataset plus one sequential write; contrast with
// GraphChi's shard sort). It returns the per-partition edge counts.
func (rt *Runtime) Prepare() ([]int64, error) {
	tm := rt.MainTiming()
	sc, err := stream.NewEdgeScanner(rt.Vol, graph.EdgeFileName(rt.Meta.Name), tm, rt.Opts.StreamBufSize)
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	if rt.Opts.Direction != DirectionTopDown {
		rt.OutDeg = make([]uint32, rt.Meta.Vertices)
		rt.VisitedBits = NewBitset(rt.Meta.Vertices)
	}
	outs := make([]*stream.Writer[graph.Edge], rt.Parts.P())
	for p := range outs {
		w, err := stream.NewCodecEdgeWriter(rt.Vol, rt.EdgeFile(p), tm, rt.Opts.StreamBufSize, rt.Codec)
		if err != nil {
			for _, o := range outs[:p] {
				o.Abort()
			}
			return nil, err
		}
		w.SetAsync() // write-behind; readers barrier through AwaitFile
		outs[p] = w
	}
	for {
		e, ok, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if err := rt.Meta.CheckEdge(e); err != nil {
			return nil, err
		}
		if rt.OutDeg != nil {
			rt.OutDeg[e.Src]++
		}
		if err := outs[rt.Parts.Of(e.Src)].Append(e); err != nil {
			return nil, err
		}
	}
	rt.Compute(float64(rt.Meta.Edges) * rt.Costs.ScatterPerEdge)
	counts := make([]int64, len(outs))
	for p, o := range outs {
		counts[p] = o.Count()
		if err := o.Close(); err != nil {
			return nil, err
		}
		rt.BytesWritten += o.BytesWritten()
		rt.RegisterReady(rt.EdgeFile(p), o.LastOp())
	}
	rt.BytesRead += sc.BytesRead()
	return counts, nil
}

// Verts is one partition's in-memory vertex state: BFS level (NoLevel =
// unvisited) and parent.
type Verts struct {
	Lo     graph.VertexID
	Level  []uint32
	Parent []graph.VertexID
}

// NoLevel marks an unvisited vertex in a Verts array and on disk.
const NoLevel = uint32(0xFFFFFFFF)

// vertRecBytes is the on-disk size of one vertex record (level, parent).
const vertRecBytes = 8

type vertRec struct {
	level  uint32
	parent graph.VertexID
}

// InitVerts returns a fresh all-unvisited vertex state for partition p.
func (rt *Runtime) InitVerts(p int) *Verts {
	lo, hi := rt.Parts.Interval(p)
	n := int(hi - lo)
	v := &Verts{Lo: lo, Level: make([]uint32, n), Parent: make([]graph.VertexID, n)}
	for i := range v.Level {
		v.Level[i] = NoLevel
		v.Parent[i] = graph.NoVertex
	}
	rt.Compute(float64(n) * rt.Costs.PerVertex)
	return v
}

// LoadVerts reads partition p's vertex-state file into memory.
func (rt *Runtime) LoadVerts(p int) (*Verts, error) {
	return rt.LoadVertsFile(p, rt.VertexFile(p))
}

// LoadVertsFile is LoadVerts from an explicitly named vertex file —
// checkpointed runs keep one vertex file per iteration generation, so
// resume must name which generation to load.
func (rt *Runtime) LoadVertsFile(p int, name string) (*Verts, error) {
	rt.AwaitFile(name)
	lo, hi := rt.Parts.Interval(p)
	n := int(hi - lo)
	sc, err := stream.NewScanner(rt.Vol, name, rt.MainTiming(), rt.Opts.StreamBufSize, vertRecBytes,
		func(b []byte) vertRec {
			u := graph.GetUpdate(b) // same layout: two little-endian uint32
			return vertRec{level: uint32(u.Dst), parent: u.Parent}
		})
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	v := &Verts{Lo: lo, Level: make([]uint32, n), Parent: make([]graph.VertexID, n)}
	for i := 0; i < n; i++ {
		rec, ok, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("xstream: vertex file %s truncated at record %d of %d", name, i, n)
		}
		v.Level[i] = rec.level
		v.Parent[i] = rec.parent
	}
	rt.BytesRead += sc.BytesRead()
	rt.Compute(float64(n) * rt.Costs.PerVertex)
	return v, nil
}

// SaveVerts writes partition p's vertex state back to disk ("the updated
// vertices of each partition should be saved back to disk after each
// iteration", §II-A).
func (rt *Runtime) SaveVerts(p int, v *Verts) error {
	return rt.SaveVertsFile(p, rt.VertexFile(p), v)
}

// SaveVertsFile is SaveVerts to an explicitly named vertex file (see
// LoadVertsFile).
func (rt *Runtime) SaveVertsFile(p int, name string, v *Verts) error {
	w, err := stream.NewWriter(rt.Vol, name, rt.MainTiming(), rt.Opts.StreamBufSize, vertRecBytes,
		func(b []byte, rec vertRec) {
			graph.PutUpdate(b, graph.Update{Dst: graph.VertexID(rec.level), Parent: rec.parent})
		})
	if err != nil {
		return err
	}
	w.SetAsync() // write-behind; next LoadVerts barriers through AwaitFile
	for i := range v.Level {
		if err := w.Append(vertRec{level: v.Level[i], parent: v.Parent[i]}); err != nil {
			w.Abort()
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	rt.BytesWritten += w.BytesWritten()
	rt.RegisterReady(name, w.LastOp())
	rt.Compute(float64(len(v.Level)) * rt.Costs.PerVertex)
	return nil
}

// MarkRoot marks the root vertex visited at level 0 if it falls in v.
func (rt *Runtime) MarkRoot(v *Verts) bool {
	root := rt.Opts.Root
	lo := v.Lo
	if uint64(root) < uint64(lo) || int(root-lo) >= len(v.Level) {
		return false
	}
	v.Level[root-lo] = 0
	v.Parent[root-lo] = root
	if rt.VisitedBits != nil {
		rt.VisitedBits.Set(root)
	}
	return true
}

// CollectResult assembles the final BFS tree from every partition's
// vertex file. It does not charge I/O time: dumping the result is
// outside the measured execution, like the paper's output step.
func (rt *Runtime) CollectResult() (*Result, error) {
	return rt.CollectResultFrom(rt.VertexFile)
}

// CollectResultFrom is CollectResult reading each partition's vertex
// state from the file nameFor(p) — resume from a checkpoint collects
// the manifest's recorded generation instead of the default names.
func (rt *Runtime) CollectResultFrom(nameFor func(p int) string) (*Result, error) {
	res := &Result{
		Levels:  make([]uint32, rt.Meta.Vertices),
		Parents: make([]graph.VertexID, rt.Meta.Vertices),
	}
	for p := 0; p < rt.Parts.P(); p++ {
		name := nameFor(p)
		var b []byte
		if err := rt.Retry.Do("collect "+name, func() error {
			var e error
			b, e = storage.ReadAll(rt.Vol, name)
			return e
		}); err != nil {
			return nil, err
		}
		lo, hi := rt.Parts.Interval(p)
		if len(b) != int(hi-lo)*vertRecBytes {
			return nil, fmt.Errorf("xstream: vertex file %s has %d bytes, want %d", name, len(b), int(hi-lo)*vertRecBytes)
		}
		for i := 0; i < int(hi-lo); i++ {
			u := graph.GetUpdate(b[i*vertRecBytes:])
			res.Levels[int(lo)+i] = uint32(u.Dst)
			res.Parents[int(lo)+i] = u.Parent
			if uint32(u.Dst) != NoLevel {
				res.Visited++
			}
		}
	}
	rt.TranslateResult(res)
	return res, nil
}

// TranslateResult maps a result computed in the stored label space of a
// reordered dataset back to original labels (no-op otherwise). Engines
// that assemble a Result without CollectResult — the in-memory fast
// path — must call it before returning.
func (rt *Runtime) TranslateResult(res *Result) {
	if rt.Perm == nil {
		return
	}
	res.Levels = graph.ReindexByPerm(rt.Perm, res.Levels)
	res.Parents = rt.Perm.TranslateParents(res.Parents)
}
