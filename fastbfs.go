// Package fastbfs is the public API of this repository: a reproduction
// of "FastBFS: Fast Breadth-First Graph Search on a Single Server"
// (Cheng, Zhang, Shu, Hu, Zheng — IPDPS 2016) as a production-quality Go
// library.
//
// The package bundles
//
//   - the FastBFS engine itself (asynchronous graph trimming over an
//     edge-centric out-of-core scatter/gather loop),
//   - the two baselines the paper evaluates against — X-Stream and
//     GraphChi's parallel sliding windows — implemented from scratch,
//   - workload generators for the paper's datasets (Graph500 R-MAT and
//     synthetic twitter/friendster stand-ins),
//   - a storage layer with in-memory and real-file volumes, and an
//     analytic disk/time simulator reproducing the paper's testbed,
//   - extension algorithms on the same substrate (multi-source BFS,
//     weakly connected components, PageRank, diameter estimation).
//
// # Quick start
//
//	vol := fastbfs.NewMemVolume()
//	meta, edges, _ := fastbfs.GenerateRMAT(16, 16, 42)
//	_ = fastbfs.Store(vol, meta, edges)
//
//	opts := fastbfs.DefaultOptions()
//	opts.Base.Root = 1
//	res, _ := fastbfs.Run(context.Background(), fastbfs.EngineFastBFS, vol, meta.Name, opts)
//	fmt.Println(res.Visited, "vertices reached in", res.Metrics.ExecTime, "virtual seconds")
//
// # Contexts, engines and errors
//
// Every entry point has a context-first form (Run, BFSContext,
// SSSPContext, ...) whose ctx cancels the traversal at the next
// iteration or partition boundary; the context-free forms remain as
// thin wrappers over context.Background() for existing callers and new
// code should prefer the context-first ones — the wrappers stay for
// compatibility but get no new capabilities. The three BFS engines are
// selected by the Engine enum through Run; BFS, BFSXStream and
// BFSGraphChi are one-line conveniences over it. Failures are matchable
// with errors.Is against the exported sentinels (ErrGraphNotFound,
// ErrBadOptions, ErrCancelled, ErrBusy, ErrClosed, ErrCorrupted,
// ErrIOFailed).
//
// # Serving
//
// NewService turns a stored graph into a long-lived concurrent query
// service with per-query deadlines, admission control and a result
// cache; cmd/fastbfsd exposes it over HTTP. See DESIGN.md §9.
//
// See examples/ for complete programs and internal/bench for the
// harness that regenerates every table and figure of the paper.
package fastbfs

import (
	"context"

	"fastbfs/internal/algo"
	"fastbfs/internal/bfs"
	"fastbfs/internal/core"
	"fastbfs/internal/disksim"
	"fastbfs/internal/errs"
	"fastbfs/internal/gen"
	"fastbfs/internal/graph"
	"fastbfs/internal/metrics"
	"fastbfs/internal/serve"
	"fastbfs/internal/storage"
	"fastbfs/internal/xstream"
)

// Sentinel errors shared by every engine and the query service; match
// with errors.Is. An engine error may wrap several of them plus the
// context cause (a cancelled query matches both ErrCancelled and
// context.Canceled / context.DeadlineExceeded).
var (
	// ErrGraphNotFound: the named graph has no config or edge file on
	// the volume.
	ErrGraphNotFound = errs.ErrGraphNotFound
	// ErrBadOptions: the query or options are malformed (root out of
	// range, weighted graph handed to BFS, unknown engine...).
	ErrBadOptions = errs.ErrBadOptions
	// ErrCancelled: the run was abandoned because its context was
	// cancelled or its deadline passed.
	ErrCancelled = errs.ErrCancelled
	// ErrBusy: the query service's admission queue is full.
	ErrBusy = errs.ErrBusy
	// ErrClosed: the query service is shut down or draining.
	ErrClosed = errs.ErrClosed
	// ErrCorrupted: stored data failed a checksum or structural check
	// (torn frame, bad CRC, invalid checkpoint manifest).
	ErrCorrupted = errs.ErrCorrupted
	// ErrIOFailed: an I/O operation failed past the transient-retry
	// budget, or failed permanently.
	ErrIOFailed = errs.ErrIOFailed
	// ErrDeadlineHopeless: overload control shed the query at admission —
	// its deadline could not survive the predicted queue wait plus
	// execution time (HTTP 429 + Retry-After).
	ErrDeadlineHopeless = errs.ErrDeadlineHopeless
	// ErrInternal: the query was lost to a recovered panic, isolated to
	// exactly that query (HTTP 500).
	ErrInternal = errs.ErrInternal
	// ErrUnavailable: the service's circuit breaker is open and failing
	// fast while the volume backs off (HTTP 503 + Retry-After).
	ErrUnavailable = errs.ErrUnavailable
)

// Core graph types.
type (
	// VertexID identifies a vertex; ids are dense in [0, Vertices).
	VertexID = graph.VertexID
	// Edge is a directed edge.
	Edge = graph.Edge
	// Meta describes a stored graph.
	Meta = graph.Meta
	// Volume is the storage abstraction engines stream through.
	Volume = storage.Volume
	// Result is a BFS engine's output: levels, parents and metrics.
	Result = xstream.Result
	// Options configures the FastBFS engine.
	Options = core.Options
	// EngineOptions is the base option set shared by every engine.
	EngineOptions = xstream.Options
	// Sim selects simulated timing and carries device/cost models.
	Sim = xstream.SimConfig
	// Device is one simulated disk.
	Device = disksim.Device
	// RunMetrics is the measurement record of one engine execution.
	RunMetrics = metrics.Run
)

// NoVertex is the "no parent" sentinel.
const NoVertex = graph.NoVertex

// NoLevel marks a vertex not reached by the traversal.
const NoLevel = xstream.NoLevel

// NewMemVolume returns an in-memory volume (deterministic, used with
// simulated timing).
func NewMemVolume() *storage.Mem { return storage.NewMem() }

// NewOSVolume returns a volume backed by real files under dir (wall
// clock timing).
func NewOSVolume(dir string) (*storage.OS, error) { return storage.NewOS(dir) }

// Codec identifies a stored edge representation: CodecFixed is the raw
// fixed-width record format, CodecDelta the block-compressed varint
// delta format (see DESIGN.md §14).
type Codec = graph.Codec

// The available codecs.
const (
	CodecFixed = graph.CodecFixed
	CodecDelta = graph.CodecDelta
)

// ParseCodec maps "fixed" or "delta" to a Codec ("" defaults to fixed);
// unknown names fail with ErrBadOptions.
func ParseCodec(s string) (Codec, error) { return graph.ParseCodec(s) }

// StoreOptions configures StoreGraph: the edge codec, whether to write
// the reverse-edge file direction-optimized traversals need, and
// whether to relabel vertices by descending degree before storing.
type StoreOptions = graph.StoreOptions

// StoreGraph writes a graph (edge list, optional reverse-edge file,
// config) to a volume under explicit storage options. A reordered graph
// is stored under a degree-sorted relabeling with the permutation
// persisted alongside; every query API keeps speaking the caller's
// original vertex labels — roots, levels, parents and algorithm values
// are translated at the API boundary. ctx only gates the call's start
// (storing is one synchronous pass; there are no iteration boundaries
// to poll).
func StoreGraph(ctx context.Context, vol Volume, m Meta, edges []Edge, opts StoreOptions) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return graph.StoreGraph(vol, m, edges, opts)
}

// Store writes a graph (binary edge list + config file) to a volume —
// StoreGraph under the fixed codec with a reverse-edge file, kept as a
// compatibility wrapper; prefer StoreGraph in new code.
func Store(vol Volume, m Meta, edges []Edge) error { return graph.Store(vol, m, edges) }

// LoadMeta reads a stored graph's metadata.
func LoadMeta(vol Volume, name string) (Meta, error) { return graph.LoadMeta(vol, name) }

// GenerateRMAT generates a Graph500-specification R-MAT graph with
// 2^scale vertices and edgeFactor·2^scale edges.
func GenerateRMAT(scale, edgeFactor int, seed int64) (Meta, []Edge, error) {
	return gen.RMAT(scale, edgeFactor, gen.Graph500(), seed)
}

// GenerateTwitterLike generates a directed scale-free stand-in for the
// paper's twitter_rv dataset at the given scale.
func GenerateTwitterLike(scale int, seed int64) (Meta, []Edge, error) {
	return gen.TwitterLike(scale, seed)
}

// GenerateFriendsterLike generates an undirected (symmetrized)
// scale-free stand-in for the paper's friendster dataset.
func GenerateFriendsterLike(scale int, seed int64) (Meta, []Edge, error) {
	return gen.FriendsterLike(scale, seed)
}

// DefaultOptions returns FastBFS options with a simulated single HDD,
// the paper's 4-core CPU model, 4 threads and a 1 GiB memory budget.
func DefaultOptions() Options {
	return Options{Base: EngineOptions{Sim: xstream.DefaultSim()}}
}

// DefaultSim returns the single-HDD simulation configuration.
func DefaultSim() *Sim { return xstream.DefaultSim() }

// ScaledSim returns a single-HDD simulation with its positioning cost
// scaled down by factor, for datasets scaled down from the paper's
// multi-gigabyte graphs (see DESIGN.md §6).
func ScaledSim(factor float64) *Sim { return xstream.ScaledSim(factor) }

// HDD and SSD build simulated devices with the paper's testbed
// characteristics.
func HDD(name string) *Device { return disksim.HDD(name) }

// SSD returns a simulated SATA2-era SSD.
func SSD(name string) *Device { return disksim.SSD(name) }

// Engine selects a BFS engine for Run: the paper's FastBFS or one of
// the two baselines it is evaluated against.
type Engine = serve.Engine

// The available engines.
const (
	EngineFastBFS  = serve.EngineFastBFS
	EngineXStream  = serve.EngineXStream
	EngineGraphChi = serve.EngineGraphChi
)

// ParseEngine maps "fastbfs", "xstream" or "graphchi" to an Engine
// ("" defaults to fastbfs); unknown names fail with ErrBadOptions.
func ParseEngine(s string) (Engine, error) { return serve.ParseEngine(s) }

// Run executes a BFS on the chosen engine, cancellable through ctx:
// the engines poll it at iteration and partition boundaries (and in
// FastBFS's stay writer), so a cancelled run releases its buffers and
// working files promptly and returns an error matching ErrCancelled.
// The baselines read only opts.Base; the FastBFS-specific fields (trim
// policy, stay buffers, grace periods, residency budget) apply to
// EngineFastBFS.
func Run(ctx context.Context, engine Engine, vol Volume, graphName string, opts Options) (*Result, error) {
	return serve.RunEngine(ctx, engine, vol, graphName, opts)
}

// BFSContext runs the FastBFS engine (the paper's contribution) over a
// stored graph, cancellable through ctx.
func BFSContext(ctx context.Context, vol Volume, graphName string, opts Options) (*Result, error) {
	return serve.RunEngine(ctx, EngineFastBFS, vol, graphName, opts)
}

// BFS is BFSContext without cancellation — a compatibility wrapper over
// context.Background(); prefer BFSContext or Run in new code.
func BFS(vol Volume, graphName string, opts Options) (*Result, error) {
	return BFSContext(context.Background(), vol, graphName, opts)
}

// BFSXStream runs the X-Stream baseline engine. Compatibility wrapper:
// prefer Run(ctx, EngineXStream, ...) in new code.
func BFSXStream(vol Volume, graphName string, opts EngineOptions) (*Result, error) {
	return serve.RunEngine(context.Background(), EngineXStream, vol, graphName, Options{Base: opts})
}

// BFSGraphChi runs the GraphChi (parallel sliding windows) baseline
// engine. Compatibility wrapper: prefer Run(ctx, EngineGraphChi, ...)
// in new code.
func BFSGraphChi(vol Volume, graphName string, opts EngineOptions) (*Result, error) {
	return serve.RunEngine(context.Background(), EngineGraphChi, vol, graphName, Options{Base: opts})
}

// ValidateBFS checks an engine result against the graph with
// Graph500-style parent-tree validation.
func ValidateBFS(m Meta, edges []Edge, root VertexID, res *Result) error {
	return bfs.Validate(m, edges, &bfs.Result{
		Root: root, Level: res.Levels, Parent: res.Parents, Visited: res.Visited,
	})
}

// LevelStats describes one BFS level of a convergence profile (Fig. 1).
type LevelStats = bfs.LevelStats

// Convergence computes the per-level frontier and live-edge profile of a
// BFS from root — the fraction of the graph still useful at each level,
// which is what makes trimming pay off.
func Convergence(m Meta, edges []Edge, root VertexID) ([]LevelStats, error) {
	return bfs.Convergence(m, edges, root)
}

// DiameterEstimate is the result of a sampled eccentricity sweep.
type DiameterEstimate = algo.DiameterEstimate

// EstimateDiameterContext lower-bounds a stored graph's diameter with
// repeated FastBFS sweeps from random roots, cancellable through ctx.
func EstimateDiameterContext(ctx context.Context, vol Volume, graphName string, samples int, seed int64, opts Options) (*DiameterEstimate, error) {
	return algo.EstimateDiameterContext(ctx, vol, graphName, samples, seed, opts)
}

// EstimateDiameter is EstimateDiameterContext without cancellation
// (compatibility wrapper; prefer the context form in new code).
func EstimateDiameter(vol Volume, graphName string, samples int, seed int64, opts Options) (*DiameterEstimate, error) {
	return EstimateDiameterContext(context.Background(), vol, graphName, samples, seed, opts)
}

// ConnectedComponentsContext runs weakly-connected-components label
// propagation over a stored (symmetrized) graph, returning a component
// label per vertex, cancellable through ctx.
func ConnectedComponentsContext(ctx context.Context, vol Volume, graphName string, opts EngineOptions) ([]uint32, error) {
	res, err := algo.RunContext(ctx, vol, graphName, algo.WCC{}, opts)
	if err != nil {
		return nil, err
	}
	return algo.WCC{}.Labels(res.Values), nil
}

// ConnectedComponents is ConnectedComponentsContext without cancellation
// (compatibility wrapper; prefer the context form in new code).
func ConnectedComponents(vol Volume, graphName string, opts EngineOptions) ([]uint32, error) {
	return ConnectedComponentsContext(context.Background(), vol, graphName, opts)
}

// PageRankContext runs `iterations` damped power iterations over a
// stored graph, returning a score per vertex, cancellable through ctx.
func PageRankContext(ctx context.Context, vol Volume, graphName string, iterations int, opts EngineOptions) ([]float64, error) {
	m, edges, err := graph.LoadEdges(vol, graphName)
	if err != nil {
		return nil, err
	}
	prog := algo.NewPageRank(graph.Degrees(m.Vertices, edges), iterations)
	res, err := algo.RunContext(ctx, vol, graphName, prog, opts)
	if err != nil {
		return nil, err
	}
	return prog.Ranks(res.Values), nil
}

// PageRank is PageRankContext without cancellation (compatibility
// wrapper; prefer the context form in new code).
func PageRank(vol Volume, graphName string, iterations int, opts EngineOptions) ([]float64, error) {
	return PageRankContext(context.Background(), vol, graphName, iterations, opts)
}

// WEdge is a weighted directed edge (SSSP).
type WEdge = graph.WEdge

// InfDistance is the SSSP distance of an unreached vertex.
var InfDistance = algo.Inf

// GenerateWeights assigns uniform random edge weights in [minW, maxW) to
// an edge list, producing a weighted graph for SSSP.
func GenerateWeights(m Meta, edges []Edge, minW, maxW float32, seed int64) (Meta, []WEdge, error) {
	return gen.Weigh(m, edges, minW, maxW, seed)
}

// StoreWeighted writes a weighted graph to a volume.
func StoreWeighted(vol Volume, m Meta, edges []WEdge) error {
	return graph.StoreWeighted(vol, m, edges)
}

// SSSPContext computes single-source shortest paths over a stored
// weighted graph with out-of-core Bellman-Ford iterations, returning one
// distance per vertex (InfDistance when unreached), cancellable through
// ctx.
func SSSPContext(ctx context.Context, vol Volume, graphName string, root VertexID, opts EngineOptions) ([]float32, error) {
	prog := algo.NewSSSP(root)
	res, err := algo.RunContext(ctx, vol, graphName, prog, opts)
	if err != nil {
		return nil, err
	}
	return prog.Distances(res.Values), nil
}

// SSSP is SSSPContext without cancellation (compatibility wrapper;
// prefer the context form in new code).
func SSSP(vol Volume, graphName string, root VertexID, opts EngineOptions) ([]float32, error) {
	return SSSPContext(context.Background(), vol, graphName, root, opts)
}

// MultiSourceBFSContext runs a reachability sweep from several roots at
// once, returning the hop distance per vertex (NoLevel when unreached),
// cancellable through ctx.
func MultiSourceBFSContext(ctx context.Context, vol Volume, graphName string, roots []VertexID, opts EngineOptions) ([]uint32, error) {
	prog := algo.NewMultiSourceBFS(roots)
	res, err := algo.RunContext(ctx, vol, graphName, prog, opts)
	if err != nil {
		return nil, err
	}
	return prog.Levels(res.Values), nil
}

// MultiSourceBFS is MultiSourceBFSContext without cancellation
// (compatibility wrapper; prefer the context form in new code).
func MultiSourceBFS(vol Volume, graphName string, roots []VertexID, opts EngineOptions) ([]uint32, error) {
	return MultiSourceBFSContext(context.Background(), vol, graphName, roots, opts)
}

// Serving: a long-lived concurrent query service over one stored graph
// (see internal/serve and cmd/fastbfsd).

type (
	// Service serves concurrent BFS / multi-source BFS / SSSP queries
	// over one stored graph with per-query cancellation, admission
	// control and a result cache.
	Service = serve.GraphService
	// ServiceConfig tunes a Service (concurrency, queue bound, cache
	// size, base engine options, tracer).
	ServiceConfig = serve.Config
	// Query is one request against a Service.
	Query = serve.Query
	// QueryResult is a Service query's answer.
	QueryResult = serve.Result
	// Algorithm selects what a Query computes.
	Algorithm = serve.Algorithm
	// ServiceStats is a snapshot of a Service's live counters.
	ServiceStats = serve.Stats
)

// The query algorithms.
const (
	AlgoBFS   = serve.AlgoBFS
	AlgoMSBFS = serve.AlgoMSBFS
	AlgoSSSP  = serve.AlgoSSSP
)

// NewService opens graphName on vol for serving. A missing graph fails
// with ErrGraphNotFound.
func NewService(vol Volume, graphName string, cfg ServiceConfig) (*Service, error) {
	return serve.New(vol, graphName, cfg)
}
