// Benchmarks regenerating every table and figure of the FastBFS paper's
// evaluation (§IV), one testing.B target each, plus the ablations. Run
//
//	go test -bench=. -benchmem
//
// for the quick (tiny-scale) pass, or use cmd/benchfig for the full
// printed tables at larger scales. Each benchmark reports the
// experiment's headline number as a custom metric so regressions in the
// reproduced *shape* (who wins, by what factor) are visible in benchstat
// output, not just wall time.
package fastbfs

import (
	"strconv"
	"strings"
	"testing"

	"fastbfs/internal/bench"
)

func benchCfg() bench.Config {
	sc, _ := bench.ScaleByName("tiny")
	return bench.Config{Scale: sc, Seed: 7}
}

// runExperiment executes one registered experiment b.N times, reporting
// headline metrics extracted by pick.
func runExperiment(b *testing.B, id string, pick func(t *bench.Table) map[string]float64) {
	b.Helper()
	e := bench.Find(id)
	if e == nil {
		b.Fatalf("experiment %s not registered", id)
	}
	var last *bench.Table
	for i := 0; i < b.N; i++ {
		t, err := e.Run(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if pick != nil && last != nil {
		for name, v := range pick(last) {
			b.ReportMetric(v, name)
		}
	}
}

// num parses the numeric prefix of a formatted cell ("1.70x", "61.0%").
func num(s string) float64 {
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func BenchmarkFig1Convergence(b *testing.B) {
	runExperiment(b, "fig1", func(t *bench.Table) map[string]float64 {
		return map[string]float64{"levels": float64(len(t.Rows))}
	})
}

func BenchmarkTableIRepresentation(b *testing.B) {
	runExperiment(b, "table1", nil)
}

func BenchmarkTableIIDatasets(b *testing.B) {
	runExperiment(b, "table2", func(t *bench.Table) map[string]float64 {
		return map[string]float64{"datasets": float64(len(t.Rows))}
	})
}

func BenchmarkFig4ExecTimeHDD(b *testing.B) {
	runExperiment(b, "fig4", func(t *bench.Table) map[string]float64 {
		m := map[string]float64{}
		for _, row := range t.Rows {
			m["speedup_vs_xstream_"+row[0]] = num(row[4])
		}
		return m
	})
}

func BenchmarkFig5InputData(b *testing.B) {
	runExperiment(b, "fig5", func(t *bench.Table) map[string]float64 {
		m := map[string]float64{}
		for _, row := range t.Rows {
			m["read_reduction_pct_"+row[0]] = num(row[5])
		}
		return m
	})
}

func BenchmarkFig6IowaitRatio(b *testing.B) {
	runExperiment(b, "fig6", func(t *bench.Table) map[string]float64 {
		row := t.Rows[0]
		return map[string]float64{
			"graphchi_pct": num(row[1]),
			"xstream_pct":  num(row[2]),
			"fastbfs_pct":  num(row[3]),
		}
	})
}

func BenchmarkFig7ExecTimeSSD(b *testing.B) {
	runExperiment(b, "fig7", func(t *bench.Table) map[string]float64 {
		m := map[string]float64{}
		for _, row := range t.Rows {
			m["speedup_vs_xstream_"+row[0]] = num(row[4])
		}
		return m
	})
}

func BenchmarkFig8Threads(b *testing.B) {
	runExperiment(b, "fig8", func(t *bench.Table) map[string]float64 {
		return map[string]float64{
			"fastbfs_1thread_s": num(t.Rows[0][2]),
			"fastbfs_8thread_s": num(t.Rows[3][2]),
		}
	})
}

func BenchmarkFig9Memory(b *testing.B) {
	runExperiment(b, "fig9", func(t *bench.Table) map[string]float64 {
		return map[string]float64{
			"fastbfs_256MB_s": num(t.Rows[0][3]),
			"fastbfs_4GB_s":   num(t.Rows[4][3]),
		}
	})
}

func BenchmarkFig10TwoDisks(b *testing.B) {
	runExperiment(b, "fig10", func(t *bench.Table) map[string]float64 {
		m := map[string]float64{}
		for _, row := range t.Rows {
			m["twodisk_speedup_"+row[0]] = num(row[4])
		}
		return m
	})
}

func BenchmarkAblationTrimThreshold(b *testing.B) {
	runExperiment(b, "abl-trimstart", nil)
}

func BenchmarkAblationStayBuffers(b *testing.B) {
	runExperiment(b, "abl-staybuf", nil)
}

func BenchmarkAblationGracePeriod(b *testing.B) {
	runExperiment(b, "abl-grace", func(t *bench.Table) map[string]float64 {
		return map[string]float64{"cancellations_tiny_grace": num(t.Rows[0][2])}
	})
}

func BenchmarkAblationFeatureToggles(b *testing.B) {
	runExperiment(b, "abl-features", nil)
}
