package fastbfs_test

import (
	"fmt"
	"log"

	"fastbfs"
)

// ExampleBFS runs FastBFS on a small deterministic graph: a binary-tree
// shaped dataset stored on an in-memory volume, traversed out-of-core
// against the simulated testbed.
func ExampleBFS() {
	vol := fastbfs.NewMemVolume()
	// A 15-vertex complete binary tree: vertex 0 is the root, vertex i
	// has children 2i+1 and 2i+2.
	var edges []fastbfs.Edge
	for i := fastbfs.VertexID(0); i < 7; i++ {
		edges = append(edges,
			fastbfs.Edge{Src: i, Dst: 2*i + 1},
			fastbfs.Edge{Src: i, Dst: 2*i + 2})
	}
	meta := fastbfs.Meta{Name: "tree15", Vertices: 15, Edges: uint64(len(edges))}
	if err := fastbfs.Store(vol, meta, edges); err != nil {
		log.Fatal(err)
	}

	opts := fastbfs.DefaultOptions()
	opts.Base.Root = 0
	opts.Base.MemoryBudget = 64 // force several partitions: genuinely out-of-core
	res, err := fastbfs.BFS(vol, "tree15", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("visited:", res.Visited)
	fmt.Println("depth of vertex 14:", res.Levels[14])
	fmt.Println("valid:", fastbfs.ValidateBFS(meta, edges, 0, res) == nil)
	// Output:
	// visited: 15
	// depth of vertex 14: 3
	// valid: true
}

// ExampleConvergence shows the per-level live-edge profile that decides
// whether trimming pays off (the paper's Fig. 1).
func ExampleConvergence() {
	// A star: everything is discovered at level 1, so 100% of the edges
	// are dead after one level.
	var edges []fastbfs.Edge
	for i := fastbfs.VertexID(1); i < 6; i++ {
		edges = append(edges, fastbfs.Edge{Src: 0, Dst: i})
	}
	meta := fastbfs.Meta{Name: "star6", Vertices: 6, Edges: 5}
	prof, err := fastbfs.Convergence(meta, edges, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range prof {
		fmt.Printf("level %d: frontier=%d live=%d\n", s.Level, s.Frontier, s.LiveEdges)
	}
	// Output:
	// level 0: frontier=1 live=5
	// level 1: frontier=5 live=0
}

// ExampleSSSP computes weighted shortest paths out-of-core.
func ExampleSSSP() {
	vol := fastbfs.NewMemVolume()
	meta := fastbfs.Meta{Name: "wdiamond", Vertices: 4, Edges: 4}
	wedges := []fastbfs.WEdge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 0, Dst: 2, Weight: 5},
		{Src: 1, Dst: 3, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1},
	}
	if err := fastbfs.StoreWeighted(vol, meta, wedges); err != nil {
		log.Fatal(err)
	}
	dist, err := fastbfs.SSSP(vol, "wdiamond", 0, fastbfs.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dist(3) = %.0f\n", dist[3])
	// Output:
	// dist(3) = 2
}
