package fastbfs

import (
	"testing"
)

// TestPublicAPIEndToEnd drives the facade the way the README's
// quickstart does: generate, store, run all three engines, validate,
// then exercise the extension algorithms.
func TestPublicAPIEndToEnd(t *testing.T) {
	vol := NewMemVolume()
	meta, edges, err := GenerateRMAT(10, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := Store(vol, meta, edges); err != nil {
		t.Fatal(err)
	}
	if m2, err := LoadMeta(vol, meta.Name); err != nil || m2 != meta {
		t.Fatalf("LoadMeta = %+v, %v", m2, err)
	}

	var root VertexID
	deg := make([]uint32, meta.Vertices)
	for _, e := range edges {
		deg[e.Src]++
		if deg[e.Src] > deg[root] {
			root = e.Src
		}
	}

	opts := DefaultOptions()
	opts.Base.Root = root
	opts.Base.MemoryBudget = meta.DataBytes() / 3
	res, err := BFS(vol, meta.Name, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBFS(meta, edges, root, res); err != nil {
		t.Fatal(err)
	}

	base := opts.Base
	base.Sim = DefaultSim()
	xs, err := BFSXStream(vol, meta.Name, base)
	if err != nil {
		t.Fatal(err)
	}
	base.Sim = DefaultSim()
	gc, err := BFSGraphChi(vol, meta.Name, base)
	if err != nil {
		t.Fatal(err)
	}
	if xs.Visited != res.Visited || gc.Visited != res.Visited {
		t.Fatalf("engines disagree: fastbfs=%d xstream=%d graphchi=%d", res.Visited, xs.Visited, gc.Visited)
	}

	prof, err := Convergence(meta, edges, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) == 0 || prof[0].LiveEdges != meta.Edges {
		t.Fatalf("convergence profile = %+v", prof)
	}

	levels, err := MultiSourceBFS(vol, meta.Name, []VertexID{root}, base)
	if err != nil {
		t.Fatal(err)
	}
	for v := range levels {
		if levels[v] != res.Levels[v] {
			t.Fatalf("multi-source BFS with one root differs at vertex %d", v)
		}
	}

	ranks, err := PageRank(vol, meta.Name, 5, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != int(meta.Vertices) {
		t.Fatalf("ranks = %d", len(ranks))
	}

	est, err := EstimateDiameter(vol, meta.Name, 3, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if est.LowerBound < 1 {
		t.Fatalf("diameter lower bound = %d", est.LowerBound)
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	if m, e, err := GenerateTwitterLike(8, 1); err != nil || uint64(len(e)) != m.Edges {
		t.Fatalf("twitter: %v %v", m, err)
	}
	m, e, err := GenerateFriendsterLike(8, 1)
	if err != nil || !m.Undirected || uint64(len(e)) != m.Edges {
		t.Fatalf("friendster: %v %v", m, err)
	}
	if err := Store(NewMemVolume(), m, e); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIDevices(t *testing.T) {
	h, s := HDD("h"), SSD("s")
	if h.Bandwidth >= s.Bandwidth || h.SeekLatency <= s.SeekLatency {
		t.Error("device presets inverted")
	}
	if ScaledSim(100).MainDisk.SeekLatency >= DefaultSim().MainDisk.SeekLatency {
		t.Error("ScaledSim did not reduce the positioning cost")
	}
}
